"""Repository persistence: survive a ReStore restart.

The paper's repository is durable state ("Facebook stores the result of
any query ... for seven days"); this module saves/loads it through the
DFS itself.

Plan matching needs only operator **signatures and DAG structure** — not
executable closures — so entries are serialized as *skeleton plans*: one
record per operator carrying its kind, canonical signature, schema, and
input edges. A reloaded repository matches and rewrites exactly like the
original (rewriting takes its schema from the *input* plan's frontier, so
skeletons never need to execute). Statistics, input versions, ownership,
provenance, and the plan fingerprint round-trip too; Load records are
rebuilt as real :class:`~repro.physical.operators.POLoad` operators (the
path and version are recovered from the canonical signature) so a
reloaded repository rebuilds its leaf-load and fingerprint indexes
identically to the original's.

File formats (spec in ``docs/ARCHITECTURE.md``):

* **v1 (legacy, unsharded)** — one JSON entry record per line, in scan
  order. Written for plain :class:`Repository` instances; reloading by
  sequential insert reproduces the scan order exactly (the order is a
  pure function of the entry set with ties broken by insertion
  sequence).

* **v2 (sharded)** — a **manifest** header line
  (``{"restore-manifest": 2, "num_shards": N, "sections": [...]}``)
  followed by one JSONL **section per shard** (catch-all shard id
  ``-1``). Each section line wraps an entry record with its global scan
  ``position`` so the loader can re-insert in the original global
  priority order even though the file is grouped by shard.

* **v3 (incremental, legacy)** — a **snapshot** in the v2 sectioned
  shape (the manifest says ``"restore-manifest": 3`` and additionally
  points at a sibling **append-only change log** via
  ``"log"``/``"base_seq"``; each body record also carries the entry's
  stable log ``key``). The log holds one JSONL record per mutation
  (insert / remove / use-stamp), tagged with a monotonic sequence
  number and the owning shard id; the loader replays snapshot-then-log,
  skipping records at or below the snapshot's ``base_seq`` and
  tolerating a torn final log line (a crash mid-append drops the
  partial record instead of failing the restart). Still written by
  :func:`save_snapshot` and fully loadable, but
  :class:`~repro.restore.wal.RepositoryLog` now writes v4.

* **v4 (segmented, legacy)** — the incremental format partitioned along
  the shard layout. The file at ``path`` holds only the **manifest**:
  the global scan order (stable key + tie-break sequence per entry,
  valid at the manifest's ``last_seq``) and one descriptor per partition
  pointing at that shard's immutable, generation-suffixed snapshot
  **section file** and its append-only **segment file**, with a
  per-section ``base_seq`` watermark. Each shard appends and compacts
  independently: a compaction rewrites only the sections of *dirty*
  shards (new generation files), re-points the manifest, and truncates
  just those shards' segments — clean sections are reused at the file
  level.

* **v5 (order-delta)** — what
  :class:`~repro.restore.wal.RepositoryLog` writes: v4's sections and
  segments, but the manifest no longer embeds the full scan order (the
  one remaining O(repository) write per compaction). Instead it points
  at an append-only **order log** (``order_log``/``order_gen``): full
  order records on (re)base, per-compaction **deltas** (keys removed,
  keys spliced in at recorded positions) otherwise. The loader
  reconstructs the order by replaying the log up to the manifest's
  ``order_gen`` — later records are orphans from a crashed compaction
  and are skipped, counted, and healed on the next attach. The full
  spec lives in ``docs/PERSISTENCE.md``.

``load_repository`` sniffs the format: a v2-v5 manifest loads into
a :class:`~repro.restore.sharding.ShardedRepository` of the manifest's
shard count (a v3/v4 snapshot of an unsharded repository says
``num_shards: 0`` and loads into a plain :class:`Repository`), a v1
file into a plain :class:`Repository` — unless the caller passes an
explicit ``repository`` target, which is how a pre-shard v1 file
migrates into a sharded deployment (the shard layout is recomputed from
the stable load-key hash, so no rewrite is needed). Whatever the
format, the loader attaches a :class:`LoaderReport` to the returned
repository (``repository.loader_report``) with its counters — replayed
/ stale / dangling log records, torn-tail drops, and saved-fingerprint
mismatches — and the replay state a
:class:`~repro.restore.wal.RepositoryLog` needs to resume appending.
"""

import json
import warnings

from repro.common.errors import RepositoryError
from repro.data.schema import Field, Schema
from repro.data.types import DataType
from repro.physical.operators import PhysOp, POLoad, POStore
from repro.physical.plan import PhysicalPlan
from repro.restore.index import parse_load_signature
from repro.restore.repository import Repository, RepositoryEntry
from repro.restore.sharding import ShardedRepository
from repro.restore.stats import EntryStats


class SkeletonOp(PhysOp):
    """A deserialized operator: fixed signature, no executable payload."""

    def __init__(self, kind, signature, schema, inputs):
        super().__init__(inputs, schema)
        self.kind = kind
        self._signature = signature

    def signature(self):
        return self._signature

    def copy_with_inputs(self, inputs):
        return self._carry(
            SkeletonOp(self.kind, self._signature, self.schema, list(inputs))
        )


# --- Schema (de)serialization ---------------------------------------------------


def schema_to_json(schema):
    if schema is None:
        return None
    return [
        {
            "name": field.name,
            "dtype": field.dtype.value,
            "element": schema_to_json(field.element),
        }
        for field in schema.fields
    ]


def schema_from_json(data):
    if data is None:
        return None
    fields = [
        Field(item["name"], DataType(item["dtype"]),
              schema_from_json(item["element"]))
        for item in data
    ]
    return Schema(fields)


# --- Plan (de)serialization -----------------------------------------------------


def plan_to_json(plan):
    """Topologically-ordered operator records with input indices."""
    operators = plan.operators()
    index = {id(op): position for position, op in enumerate(operators)}
    records = []
    for op in operators:
        records.append(
            {
                "kind": op.kind,
                "signature": op.signature(),
                "schema": schema_to_json(op.schema),
                "inputs": [index[id(parent)] for parent in op.inputs],
                "store_path": op.path if isinstance(op, POStore) else None,
            }
        )
    return records


def plan_from_json(records):
    operators = []
    for record in records:
        inputs = [operators[i] for i in record["inputs"]]
        if record["store_path"] is not None:
            op = POStore(inputs[0], record["store_path"])
        else:
            op = _operator_from_record(record, inputs)
        operators.append(op)
    sinks = [op for op in operators if isinstance(op, POStore)]
    if len(sinks) != 1:
        raise RepositoryError(
            f"a serialized entry plan must have exactly one Store, got {len(sinks)}"
        )
    return PhysicalPlan(sinks)


def _operator_from_record(record, inputs):
    """Rebuild one non-Store operator.

    Loads come back as real POLoads (path/version recovered from the
    canonical signature) so the repository's leaf-load index can key a
    reloaded entry exactly as it keyed the original; everything else is a
    signature-preserving skeleton.
    """
    if record["kind"] == "load" and not inputs:
        parsed = parse_load_signature(record["signature"])
        if parsed is not None:
            path, version = parsed
            return POLoad(path, schema_from_json(record["schema"]), version)
    return SkeletonOp(record["kind"], record["signature"],
                      schema_from_json(record["schema"]), inputs)


# --- Repository (de)serialization ---------------------------------------------------


def entry_to_json(entry):
    """One entry as a JSON-able dict — the ``entry`` payload of section
    records. Every field except three is fixed at insert time, which is
    what lets a shard worker serialize its *own* replica under
    worker-owned compaction and still emit exactly the bytes the
    front-end would: the mutable pair (``use_count``,
    ``last_used_tick``) and ``sequence`` (which :func:`entry_from_json`
    deliberately does not restore — it is minted per process) are
    patched in from compact-time coordinator state riding the request
    (see :meth:`~repro.restore.service.ShardWorkerState.write_section`),
    so replica staleness in those fields cannot reach the durable
    bytes."""
    stats = entry.stats
    return {
        "plan": plan_to_json(entry.plan),
        "fingerprint": entry.fingerprint,
        # The insertion sequence is the scan order's final tie-break.
        # It must round-trip: re-insertion mints sequences in scan-
        # position order, but a subsumption-edge-constrained scan order
        # can invert metric-tied entries relative to insertion order —
        # a post-reload recompute would then break those ties
        # differently than the live repository.
        "sequence": getattr(entry, "_sequence", None),
        "output_path": entry.output_path,
        "input_versions": entry.input_versions,
        "owns_file": entry.owns_file,
        "origin": entry.origin,
        "stats": {
            "input_bytes": stats.input_bytes,
            "output_bytes": stats.output_bytes,
            "producing_job_time": stats.producing_job_time,
            "map_time": stats.map_time,
            "reduce_time": stats.reduce_time,
            "created_tick": stats.created_tick,
            "last_used_tick": stats.last_used_tick,
            "use_count": stats.use_count,
        },
    }


def entry_from_json(data, report=None):
    raw = data["stats"]
    stats = EntryStats(
        raw["input_bytes"], raw["output_bytes"], raw["producing_job_time"],
        map_time=raw["map_time"], reduce_time=raw["reduce_time"],
        created_tick=raw["created_tick"],
    )
    stats.last_used_tick = raw["last_used_tick"]
    stats.use_count = raw["use_count"]
    entry = RepositoryEntry(
        plan_from_json(data["plan"]),
        data["output_path"],
        stats,
        input_versions=data["input_versions"],
        owns_file=data["owns_file"],
        origin=data["origin"],
    )
    # The saved fingerprint is derivable state: the plan round-trips its
    # signatures, so the recomputed hash is authoritative. A stale saved
    # value (e.g. after a signature-canonicalization change in a newer
    # release) must not brick the restart — the recomputed fingerprint
    # wins, and the repository re-indexes with it. But the drift itself
    # must be observable, not invisible: verify the saved value and
    # surface mismatches through the loader counter and a warning.
    saved_fingerprint = data.get("fingerprint")
    if saved_fingerprint is not None and saved_fingerprint != entry.fingerprint:
        if report is not None:
            # Count only: the loader emits one aggregated warning at the
            # end (a drift hits every entry of a large repository at
            # once) through a path that cannot brick the restart.
            report.fingerprint_mismatches += 1
        else:
            warnings.warn(
                f"saved fingerprint for entry {entry.output_path!r} does "
                f"not match the recomputed one (signature "
                f"canonicalization drift since the save?); the "
                f"recomputed value wins",
                RuntimeWarning, stacklevel=2)
    return entry


DEFAULT_REPOSITORY_PATH = "/restore/repository.jsonl"

#: manifest marker key; its value is the format version
MANIFEST_KEY = "restore-manifest"
MANIFEST_VERSION = 2
#: the single-file incremental snapshot+log format (legacy; still
#: written by save_snapshot and fully loadable)
LOG_MANIFEST_VERSION = 3
#: the segmented format: per-shard section + segment files coordinated
#: through the manifest; its manifest embeds the full global scan order
#: (legacy — still fully loadable)
SEGMENT_MANIFEST_VERSION = 4
#: the order-delta format (what RepositoryLog writes): v4's sections and
#: segments, but the global scan order lives in a sibling append-only
#: **order log** — full records on (re)base, per-compaction deltas
#: otherwise — so a dirty-shard compaction writes O(changes), never the
#: O(repository) full order
DELTA_MANIFEST_VERSION = 5

#: section/segment file name of the catch-all partition (and of a plain
#: repository, whose single partition is the catch-all)
CATCHALL_LABEL = "catchall"


def shard_label(shard_id):
    """The file-name label of one partition: ``"0"``, ``"1"``, … for
    regular shards, :data:`CATCHALL_LABEL` for the catch-all (sharded
    id ``-1``) and for a plain repository's single partition (``None``).
    """
    if shard_id is None or shard_id < 0:
        return CATCHALL_LABEL
    return str(shard_id)


def section_file_path(path, label, generation):
    """The immutable v4 section file for one partition: generation-
    suffixed so a dirty-shard compaction writes a *new* file and
    re-points the manifest instead of overwriting in place (a crash
    between the two leaves the old manifest's files intact)."""
    return f"{path}.sec-{label}.g{generation}"


def section_file_prefix(path):
    """Every v4 section file of ``path`` starts with this prefix —
    compaction garbage-collects unreferenced generations under it."""
    return f"{path}.sec-"


def segment_file_path(log_base, label):
    """The append-only v4 segment file of one partition, derived from
    the manifest's ``log`` base path (default ``<path>.log``)."""
    return f"{log_base}.{label}"


def order_log_path(path, generation):
    """The v5 order-log file: generation-suffixed like section files, so
    a rebase writes a *new* file and re-points the manifest instead of
    rewriting the referenced one in place (a crash in between leaves the
    old manifest's order log intact)."""
    return f"{path}.order.g{generation}"


def order_log_prefix(path):
    """Every v5 order-log file of ``path`` starts with this prefix —
    compaction garbage-collects unreferenced generations under it."""
    return f"{path}.order.g"


def encode_order_delta(old_order, new_order):
    """The v5 order-delta between two recorded scan orders, or None.

    Both orders are ``[[key, sequence], ...]``. The delta says which
    keys left and where new keys were spliced in
    (``[key, sequence, position]`` with ``position`` indexing the *new*
    order, ascending); it is only expressible when the surviving
    entries kept their relative order and tie-break sequences — the
    overwhelmingly common case, since scan-order recomputation preserves
    the relative order of untouched entries. When survivors moved (e.g.
    a use-stamp re-ranked entries under a non-greedy history) the writer
    falls back to a full order record, signalled here by None.
    """
    new_keys = {key for key, _ in new_order}
    old_keys = {key for key, _ in old_order}
    old_survivors = [(key, seq) for key, seq in old_order if key in new_keys]
    new_survivors = [(key, seq) for key, seq in new_order if key in old_keys]
    if old_survivors != new_survivors:
        return None
    removed = [key for key, _ in old_order if key not in new_keys]
    inserted = [[key, seq, position]
                for position, (key, seq) in enumerate(new_order)
                if key not in old_keys]
    return {"removed": removed, "inserted": inserted}


def apply_order_delta(order, record):
    """Apply one v5 order-delta record to a reconstructed order.

    Removals first, then splices at their recorded positions in
    ascending order — each position indexes the final order, and because
    earlier splices land at strictly smaller positions, inserting
    sequentially reproduces it exactly.
    """
    removed = set(record.get("removed", ()))
    result = [[key, seq] for key, seq in order if key not in removed]
    for item in record.get("inserted", ()):
        key, seq, position = item
        if not 0 <= position <= len(result):
            raise RepositoryError(
                f"corrupt order-delta record: splice position "
                f"{position} outside the reconstructed order "
                f"(length {len(result)})")
        result.insert(position, [key, seq])
    return result


class LoaderReport:
    """What ``load_repository`` observed while rebuilding a repository.

    Attached to every returned repository as ``loader_report``. The
    counters make restart anomalies observable instead of silent —
    ``fingerprint_mismatches`` flags signature-canonicalization drift
    between the saving and loading release, ``torn_tail_dropped`` /
    ``stale_records`` / ``dangling_records`` account for every v3 log
    record that was not replayed — and ``last_seq`` / ``keys`` are the
    replay state a :class:`~repro.restore.wal.RepositoryLog` resumes
    from when it re-attaches after a restart.
    """

    def __init__(self, path, dfs=None):
        self.snapshot_path = path
        #: the filesystem the load read from — resume checks compare it
        #: by identity, so a report cannot vouch for a different DFS
        #: that merely shares the path string
        self.dfs = dfs
        self.format_version = None     # 1..4 (None: no file found)
        #: v3: the change-log file; v4: the segment *base* path (each
        #: partition's segment is ``<base>.<label>``)
        self.log_path = None
        self.entries_loaded = 0        # entries in the final repository
        self.log_records = 0           # lines found in the change log(s)
        self.replayed_records = 0      # log records applied
        self.stale_records = 0         # records at or below base_seq
        self.dangling_records = 0      # records whose target was gone
        self.torn_tail_dropped = 0     # partial final line from a crash
        self.orphaned_log_records = 0  # sibling log a v1/v2 load ignores
        self.fingerprint_mismatches = 0
        self.last_seq = 0              # highest sequence number seen
        self.keys = {}                 # entry_id -> stable log key (v3/v4)
        #: v4 resume state: manifest num_shards, plus one descriptor per
        #: partition label ({"shard", "file", "entries", "base_seq",
        #: "segment"}) and the count of complete records per segment —
        #: what a re-attaching RepositoryLog needs to keep appending and
        #: to reuse clean sections at the next compaction.
        self.num_shards = None
        self.section_state = {}        # label -> section descriptor
        self.segment_records = {}      # label -> complete records
        #: v5 resume state: the order-log file the manifest points at,
        #: its authoritative generation, the reconstructed recorded
        #: order at that generation ([[key, seq], ...]), how many
        #: applicable records the log held (the writer's rebase
        #: counter), and how many records were *orphaned* — complete
        #: records above ``order_gen``, left by a compaction that
        #: crashed before its manifest swap. Orphans are never applied;
        #: a re-attaching RepositoryLog heals them with a full rebase.
        self.order_log_path = None
        self.order_gen = 0
        self.order_records = 0
        self.orphan_order_records = 0
        self.recorded_order = None
        #: (use_count, last_used_tick) per entry at load time — lets a
        #: re-attaching RepositoryLog detect use-stamps applied between
        #: load and attach (which its listener never saw) and heal with
        #: a compaction instead of silently losing them.
        self.use_stats = {}
        # The replay state (last_seq/keys) is only valid until the first
        # RepositoryLog attaches — it describes the repository *as
        # loaded*, not as later mutated — so attach() consumes it.
        self.replay_state_consumed = False

    def as_dict(self):
        return {
            "snapshot_path": self.snapshot_path,
            "format_version": self.format_version,
            "log_path": self.log_path,
            "entries_loaded": self.entries_loaded,
            "log_records": self.log_records,
            "replayed_records": self.replayed_records,
            "stale_records": self.stale_records,
            "dangling_records": self.dangling_records,
            "torn_tail_dropped": self.torn_tail_dropped,
            "orphaned_log_records": self.orphaned_log_records,
            "orphan_order_records": self.orphan_order_records,
            "fingerprint_mismatches": self.fingerprint_mismatches,
            "last_seq": self.last_seq,
        }

    def describe(self):
        return (
            f"loaded {self.entries_loaded} entr(ies) from "
            f"{self.snapshot_path!r} (format v{self.format_version}): "
            f"{self.replayed_records} log record(s) replayed, "
            f"{self.stale_records} stale, {self.dangling_records} dangling, "
            f"{self.torn_tail_dropped} torn-tail dropped, "
            f"{self.fingerprint_mismatches} fingerprint mismatch(es)"
        )

    def __repr__(self):
        return f"LoaderReport({self.describe()})"


def save_repository(repository, dfs, path=DEFAULT_REPOSITORY_PATH,
                    ranker=None):
    """Persist the repository through the DFS.

    A plain :class:`Repository` is written in the v1 single-file format
    (one entry record per line, scan order); a
    :class:`~repro.restore.sharding.ShardedRepository` is written in the
    v2 format: a manifest header followed by per-shard sections whose
    lines carry each entry's global scan position.

    ``ranker`` (a :class:`~repro.restore.ranking.CandidateRanker` or its
    name) is recorded in the v2 manifest as deployment metadata — a
    restarted service can see which candidate ranking the saved
    repository was operated under. It does not affect the entries
    themselves (ranking reorders probes, never state), and the v1 format
    has no header to carry it.

    A full save is the authoritative state: any change log the file
    being overwritten pointed at — plus the conventional ``<path>.log``
    sibling — is subsumed and deleted, because the v1/v2 manifest
    carries no log pointer and leaving a log behind would strand records
    the loader never replays. Records checkpointed *after* this save go
    to a log the saved file cannot reference; the loader flags the
    conventional sibling loudly, custom log paths only until this save
    erases their pointer — prefer :class:`~repro.restore.wal.RepositoryLog`
    compaction over mixing both APIs on one path.
    """
    stale_logs = _pointed_log_paths(dfs, path)
    ranker_name = getattr(ranker, "name", ranker)
    if isinstance(repository, ShardedRepository):
        status = _save_sharded(repository, dfs, path, ranker_name)
    else:
        lines = [json.dumps(entry_to_json(entry), sort_keys=True)
                 for entry in repository.scan()]
        status = dfs.write_lines(path, lines, overwrite=True)
    for stale in stale_logs:
        dfs.delete_if_exists(stale)
    return status


def _pointed_log_paths(dfs, path):
    """Durable files a full save at ``path`` supersedes: the
    conventional sibling log, whatever log the v3 manifest being
    overwritten points at (it may be custom), and — for a v4 manifest —
    every section, segment and order-log file it references, plus
    orphaned section/order-log generations under the conventional
    prefixes (crash leftovers)."""
    log_paths = {f"{path}.log"}
    manifest = read_manifest_line(dfs, path)
    if manifest is not None:
        for field in ("log", "order_log"):
            if isinstance(manifest.get(field), str):
                log_paths.add(manifest[field])
        for section in manifest.get("sections", ()):
            if not isinstance(section, dict):
                continue
            for field in ("file", "segment"):
                if isinstance(section.get(field), str):
                    log_paths.add(section[field])
    log_paths.update(dfs.list_files(prefix=section_file_prefix(path)))
    log_paths.update(dfs.list_files(prefix=order_log_prefix(path)))
    log_paths.discard(path)
    return log_paths


def read_manifest_line(dfs, path):
    """The manifest dict on ``path``'s first line, or None (missing or
    empty file, unparseable first line, or a v1 file with no manifest).

    Reads only the file's first block — line 0 always lives there — so
    sniffing the format of a large snapshot costs O(block), not O(file).
    """
    if not dfs.exists(path):
        return None
    lines = dfs.read_block_lines(path, 0)
    if not lines:
        return None
    try:
        first = json.loads(lines[0])
    except ValueError:
        return None
    if isinstance(first, dict) and MANIFEST_KEY in first:
        return first
    return None


def _sectioned_body(repository, keys=None):
    """``(sections, body_lines)``: entries grouped by owning partition,
    each line carrying the entry's global scan position (and, when
    ``keys`` is given — the v3 snapshot — its stable change-log key)."""
    positions = {entry.entry_id: position
                 for position, entry in enumerate(repository.scan())}
    if isinstance(repository, ShardedRepository):
        groups = [(shard.shard_id,
                   sorted(shard, key=lambda entry: positions[entry.entry_id]))
                  for shard in repository.partitions()]
    else:
        # An unsharded repository is one partition (shard id null).
        groups = [(None, list(repository.scan()))]
    sections = []
    body = []
    for shard_id, members in groups:
        if not members:
            continue
        sections.append({"shard": shard_id, "entries": len(members)})
        for entry in members:
            record = {"position": positions[entry.entry_id],
                      "entry": entry_to_json(entry)}
            if keys is not None:
                record["key"] = keys.get(entry.entry_id,
                                         f"s{positions[entry.entry_id]}")
            body.append(json.dumps(record, sort_keys=True))
    return sections, body


def _save_sharded(repository, dfs, path, ranker_name=None):
    sections, body = _sectioned_body(repository)
    header = {MANIFEST_KEY: MANIFEST_VERSION,
              "num_shards": repository.num_shards,
              "entries": len(repository),
              "sections": sections}
    if ranker_name is not None:
        header["ranker"] = ranker_name
    manifest = json.dumps(header, sort_keys=True)
    return dfs.write_lines(path, [manifest] + body, overwrite=True)


def save_snapshot(repository, dfs, path=DEFAULT_REPOSITORY_PATH,
                  log_path=None, base_seq=0, keys=None, ranker=None,
                  truncate_log=True):
    """Write a v3 snapshot: the sectioned v2 shape plus the change-log
    pointer (``log``/``base_seq``) and per-entry stable log keys.

    This is the compaction half of the incremental format — normally
    called by :meth:`~repro.restore.wal.RepositoryLog.compact`, which
    owns the key assignment and the sequence counter. Unlike
    :func:`save_repository` it writes the same format for sharded and
    unsharded repositories (an unsharded one records ``num_shards: 0``
    and a single null-shard section).

    The snapshot subsumes every change-log record up to ``base_seq``, so
    by default the log is truncated *after* the snapshot lands (the
    crash-safe order: a crash in between leaves only records the new
    ``base_seq`` marks stale). Without the truncation, a direct call
    with the default ``base_seq=0`` next to a non-empty log would make
    the loader replay records the snapshot already contains —
    duplicating entries. Pass ``truncate_log=False`` only when the
    caller manages the log file itself.
    """
    ranker_name = getattr(ranker, "name", ranker)
    if log_path is None:
        log_path = f"{path}.log"
    # A v3 snapshot is authoritative for everything the overwritten
    # manifest referenced: segment/section files of a v4 deployment at
    # this path are subsumed and must not linger (their records would be
    # invisible to the v3 loader).
    stale = _pointed_log_paths(dfs, path) - {log_path}
    sections, body = _sectioned_body(repository, keys=keys or {})
    header = {MANIFEST_KEY: LOG_MANIFEST_VERSION,
              "num_shards": getattr(repository, "num_shards", 0),
              "entries": len(repository),
              "sections": sections,
              "log": log_path,
              "base_seq": base_seq}
    if ranker_name is not None:
        header["ranker"] = ranker_name
    manifest = json.dumps(header, sort_keys=True)
    status = dfs.write_lines(path, [manifest] + body, overwrite=True)
    if truncate_log:
        dfs.write_lines(log_path, [], overwrite=True)
    for old in stale:
        dfs.delete_if_exists(old)
    return status


def load_repository(dfs, path=DEFAULT_REPOSITORY_PATH, repository=None):
    """Rebuild a repository from a saved file; missing file -> empty.

    ``repository`` is the target to load into. When omitted, the file
    format decides: a v2 manifest builds a
    :class:`~repro.restore.sharding.ShardedRepository` with the
    manifest's shard count, a v1 file builds a plain
    :class:`Repository`. Passing an explicit target migrates across
    formats in either direction — in particular, a pre-shard v1 file
    loads into a ``ShardedRepository`` with identical scan order and
    match decisions (the shard layout is a pure function of the entries'
    load keys).
    """
    report = LoaderReport(path, dfs)
    lines = dfs.read_lines(path) if dfs.exists(path) else []
    if not lines:
        repository = repository if repository is not None else Repository()
        repository.loader_report = report
        # The snapshot is gone (or empty) but change-log/segment files
        # are not: records there cannot be replayed without the
        # snapshot's manifest, and silence would hide the loss.
        report.orphaned_log_records = _orphaned_log_lines(dfs, path)
        if report.orphaned_log_records:
            _warn_unbrickable(
                f"no repository snapshot at {path!r}, but sibling "
                f"change-log file(s) hold "
                f"{report.orphaned_log_records} record(s) that cannot "
                f"be replayed without it; loading empty")
        return repository
    first = json.loads(lines[0])
    if isinstance(first, dict) and MANIFEST_KEY in first:
        version = first[MANIFEST_KEY]
        if version == MANIFEST_VERSION:
            repository = _load_sharded(first, lines[1:], repository, report)
        elif version == LOG_MANIFEST_VERSION:
            repository = _load_incremental(dfs, first, lines[1:], repository,
                                           report)
        elif version in (SEGMENT_MANIFEST_VERSION, DELTA_MANIFEST_VERSION):
            repository = _load_segmented(dfs, first, lines[1:], repository,
                                         report)
        else:
            raise RepositoryError(
                f"unsupported repository format version {version!r}")
        # Surface the manifest (format version, shard count, ranker
        # metadata) to the caller; harmless no-op on a plain Repository
        # target, which simply gains the attribute.
        repository.manifest_metadata = dict(first)
    else:
        report.format_version = 1
        if repository is None:
            repository = Repository()
        records = [json.loads(line) for line in lines]
        loaded = [repository.insert(entry_from_json(record, report))
                  for record in records]
        _restore_saved_order(repository, loaded,
                             [record.get("sequence") for record in records])
    report.entries_loaded = len(repository)
    repository.loader_report = report
    if report.format_version in (1, 2):
        # A v1/v2 manifest carries no log pointer, so non-empty sibling
        # change-log or segment files mean mutations were checkpointed
        # after the last full save — they cannot be replayed, and
        # silence here would hide the loss.
        report.orphaned_log_records = _orphaned_log_lines(dfs, path)
        if report.orphaned_log_records:
            _warn_unbrickable(
                f"found {report.orphaned_log_records} change-log "
                f"record(s) next to the v{report.format_version} "
                f"snapshot at {path!r}, which cannot reference them; "
                f"they were NOT replayed (mutations checkpointed after "
                f"the last full save are lost)")
    if report.fingerprint_mismatches:
        _warn_unbrickable(
            f"{report.fingerprint_mismatches} saved fingerprint(s) in "
            f"{path!r} did not match the recomputed ones (signature "
            f"canonicalization drift since the save?); recomputed "
            f"values won — see loader_report.fingerprint_mismatches")
    return repository


def _warn_unbrickable(message):
    """Warn loudly without ever bricking the restart: forces print-only
    so an escalating filter (``-W error``) cannot turn the documented
    recovery path into a load failure."""
    with warnings.catch_warnings():
        warnings.simplefilter("always")
        warnings.warn(message, RuntimeWarning, stacklevel=3)


def _load_sharded(manifest, body, repository, report):
    report.format_version = MANIFEST_VERSION
    if repository is None:
        repository = ShardedRepository(num_shards=manifest["num_shards"])
    _load_snapshot_body(manifest, body, repository, report)
    return repository


def _load_snapshot_body(manifest, body, repository, report):
    """Insert a v2/v3 sectioned snapshot body into ``repository``.

    Sections group lines by shard; the saved global scan order is the
    recorded positions, so records are sorted by them before inserting,
    then the exact order and tie-break sequences are restored. Returns
    the stable-key map (``key`` -> entry; empty for v2 bodies, which
    carry no keys) for the caller's log replay.
    """
    expected = manifest.get("entries", len(body))
    if len(body) != expected:
        raise RepositoryError(
            f"repository snapshot truncated: manifest promises {expected} "
            f"entr(ies), file holds {len(body)}")
    records = [json.loads(line) for line in body]
    records.sort(key=lambda record: record["position"])
    by_key = {}
    loaded = []
    for record in records:
        entry = repository.insert(entry_from_json(record["entry"], report))
        loaded.append(entry)
        key = record.get("key")
        if key is not None:
            by_key[key] = entry
    # The snapshot order (and tie-break sequences) are the live history
    # at save time — possibly non-greedy after removals; restore them
    # exactly, so later mutations (incl. log replay) start from the same
    # state the live repository was in.
    _restore_saved_order(
        repository, loaded,
        [record["entry"].get("sequence") for record in records])
    return by_key


def _restore_saved_order(repository, loaded, sequences=None):
    """Pin the reloaded scan order — and insertion sequences — to the
    saved ones.

    Sequential insertion re-derives the *greedy* order of the entry set,
    but a repository saved after removals can legitimately be in a
    non-greedy order ("previous order minus the removed entries") — the
    recorded order is the live history and must win for the reload to be
    bit-identical. Likewise re-insertion mints tie-break sequences in
    scan-position order, while the live tie-break is *insertion* order;
    the saved sequences are restored so later order recomputes resolve
    metric ties exactly as the live repository would. No-op for targets
    without the primitives (the frozen seed baseline) or partial loads
    into a pre-populated repository.
    """
    if len(loaded) != len(repository):
        return
    force = getattr(repository, "force_scan_order", None)
    if force is not None:
        force(loaded)
    if (sequences is not None
            and all(sequence is not None for sequence in sequences)
            and len(set(sequences)) == len(sequences)):
        for entry, sequence in zip(loaded, sequences):
            entry._sequence = sequence
        repository._sequence = max(sequences, default=-1) + 1


def _load_incremental(dfs, manifest, body, repository, report):
    """Rebuild a v3 repository: snapshot first, then replay the change
    log past the snapshot's ``base_seq``."""
    report.format_version = LOG_MANIFEST_VERSION
    report.log_path = manifest.get("log")
    if repository is None:
        num_shards = manifest.get("num_shards", 0)
        repository = (ShardedRepository(num_shards=num_shards)
                      if num_shards >= 1 else Repository())
    # Log-replayed inserts mint fresh sequences above the snapshot's
    # restored maximum, preserving relative order (the live counter was
    # at least that high when they happened).
    by_key = _load_snapshot_body(manifest, body, repository, report)
    base_seq = manifest.get("base_seq", 0)
    report.last_seq = base_seq
    if report.log_path is not None and dfs.exists(report.log_path):
        _replay_log(dfs.read_lines(report.log_path), base_seq, repository,
                    by_key, report)
    report.keys = {entry.entry_id: key for key, entry in by_key.items()}
    report.use_stats = {
        entry.entry_id: (entry.stats.use_count, entry.stats.last_used_tick)
        for entry in by_key.values()}
    return repository


def _replay_log(lines, base_seq, repository, by_key, report):
    report.log_records = len(lines)
    for record in _parse_segment(lines, report.log_path, report):
        if record["seq"] <= base_seq:
            # Pre-compaction history: a crash between the snapshot
            # rewrite and the log truncation leaves the old records
            # behind; the snapshot already reflects them.
            report.stale_records += 1
            continue
        _apply_log_record(record, repository, by_key, report)
        report.last_seq = max(report.last_seq, record["seq"])


def _apply_log_record(record, repository, by_key, report):
    op = record["op"]
    if op == "insert":
        entry = repository.insert(entry_from_json(record["entry"], report))
        key = record.get("key")
        if key is not None:
            by_key[key] = entry
        report.replayed_records += 1
    elif op == "remove":
        if record.get("key") is None:
            # Legacy '"key": null' remove records (written for entries
            # that were never keyed, before the writer learned to skip
            # them) reference nothing durable by construction — they are
            # no-ops, not dangling anomalies.
            return
        entry = by_key.pop(record["key"], None)
        if entry is None:
            # The target is already gone (e.g. a duplicated record, or a
            # remove whose insert never made the log): count, don't die.
            report.dangling_records += 1
            return
        # No dfs argument: the live removal already deleted any owned
        # file — replay only restores the in-memory state.
        repository.remove(entry)
        report.replayed_records += 1
    elif op == "use":
        if record.get("key") is None:
            return  # legacy unkeyed use-stamp: a no-op, like the remove
        entry = by_key.get(record["key"])
        if entry is None:
            report.dangling_records += 1
            return
        # Use-stamps are absolute values, so replay is idempotent and a
        # record for an already-stamped entry converges to live state.
        entry.stats.use_count = record["use_count"]
        entry.stats.last_used_tick = record["last_used_tick"]
        report.replayed_records += 1
    else:
        # An op from a newer release: skip it rather than brick the
        # restart (the counter keeps it observable).
        report.dangling_records += 1


def _orphaned_log_lines(dfs, path):
    """Lines in change-log files next to ``path`` that a v1/v2 snapshot
    (or a missing one) cannot reference: the conventional v3 sibling
    plus every v4 segment file under its prefix."""
    sibling = f"{path}.log"
    files = set(dfs.list_files(prefix=f"{sibling}."))
    if dfs.exists(sibling):
        files.add(sibling)
    return sum(dfs.status(file).num_lines for file in sorted(files))


# --- The segmented (v4/v5) loader ------------------------------------------------


def _load_segmented(dfs, manifest, body, repository, report):
    """Rebuild a v4/v5 repository from per-shard section + segment files.

    The two formats differ only in where the recorded global scan order
    lives: embedded in the manifest (v4's ``order``) or reconstructed
    from the sibling order log (v5's ``order_log``/``order_gen`` — see
    :func:`_read_order_log` for the replay rule). Reconstruction runs in
    two phases around that recorded order (valid at the manifest's
    ``last_seq``):

    1. insert every section entry, then replay each segment's records
       with ``base_seq < seq <= last_seq`` merged across segments in
       global sequence order — this rebuilds exactly the entry set that
       was live when the manifest was written — and pin the scan order
       and tie-break sequences to the manifest's recorded ones;
    2. replay the remaining records (``seq > last_seq``) in sequence
       order, exactly like the v3 log replay.

    Records at or below a section's ``base_seq`` watermark are *stale*
    (a crash between that shard's section rewrite and its segment
    truncation leaves them behind); each segment independently tolerates
    a torn final line. Segments can therefore be read in any order — the
    per-record sequence numbers, not file order, define the replay.
    """
    report.format_version = manifest[MANIFEST_KEY]
    report.log_path = manifest.get("log")
    report.num_shards = manifest.get("num_shards", 0)
    if body:
        raise RepositoryError(
            f"a v{report.format_version} manifest file must hold only "
            f"the manifest line, found {len(body)} extra line(s)")
    if repository is None:
        repository = (ShardedRepository(num_shards=report.num_shards)
                      if report.num_shards >= 1 else Repository())
    # A partial load into a pre-populated explicit target cannot adopt
    # the manifest's global order (it is not a permutation of the union)
    # — mirror the v1-v3 loaders, which skip order restoration there.
    preexisting = len(repository)
    order_seq = manifest.get("last_seq", 0)
    # Sections: the compacted state of each partition, immutable files.
    section_records = []
    for section in manifest.get("sections", ()):
        label = shard_label(section.get("shard"))
        file = section.get("file")
        lines = (dfs.read_lines(file)
                 if file is not None and dfs.exists(file) else [])
        expected = section.get("entries", len(lines))
        if len(lines) != expected:
            raise RepositoryError(
                f"repository section {file!r} truncated: manifest "
                f"promises {expected} entr(ies), file holds {len(lines)}")
        section_records.extend(json.loads(line) for line in lines)
        report.section_state[label] = {
            "shard": section.get("shard"),
            "file": file,
            "entries": expected,
            "base_seq": section.get("base_seq", 0),
            "segment": section.get("segment"),
        }
    # Segments: parse each independently (torn tails are per-file),
    # classify every record against its section's watermark and the
    # manifest's order watermark, then merge by global sequence number.
    phase1, phase2 = [], []
    for label in sorted(report.section_state):
        state = report.section_state[label]
        segment = state.get("segment")
        lines = (dfs.read_lines(segment)
                 if segment is not None and dfs.exists(segment) else [])
        report.log_records += len(lines)
        records = _parse_segment(lines, segment, report)
        report.segment_records[label] = len(records)
        for record in records:
            if record["seq"] <= state["base_seq"]:
                report.stale_records += 1
            elif record["seq"] <= order_seq:
                phase1.append(record)
            else:
                phase2.append(record)
    # Phase 1: the repository as the manifest saw it. The insertion
    # order here is only a deterministic staging order (recorded
    # insertion sequence, a total key) — for a normal load the scan
    # order and tie-breaks are pinned from the manifest below; for a
    # partial load into a pre-populated target, where pinning is
    # skipped, it reproduces the original insertion history as closely
    # as the file allows.
    by_key = {}
    section_records.sort(key=lambda record:
                         record["entry"].get("sequence") or 0)
    for record in section_records:
        entry = repository.insert(entry_from_json(record["entry"], report))
        key = record.get("key")
        if key is not None:
            by_key[key] = entry
    phase1.sort(key=lambda record: record["seq"])
    for record in phase1:
        _apply_log_record(record, repository, by_key, report)
    if report.format_version == DELTA_MANIFEST_VERSION:
        order = _read_order_log(dfs, manifest.get("order_log"),
                                manifest.get("order_gen", 0), report)
    else:
        order = manifest.get("order", ())
    _force_recorded_order(repository, order, by_key,
                          partial=preexisting > 0)
    # Phase 2: everything appended since the manifest was written.
    phase2.sort(key=lambda record: record["seq"])
    report.last_seq = order_seq
    for record in phase2:
        _apply_log_record(record, repository, by_key, report)
        report.last_seq = max(report.last_seq, record["seq"])
    report.keys = {entry.entry_id: key for key, entry in by_key.items()}
    report.use_stats = {
        entry.entry_id: (entry.stats.use_count, entry.stats.last_used_tick)
        for entry in by_key.values()}
    return repository


def _parse_segment(lines, segment, report):
    """Complete records of one segment file, dropping a torn final line
    (a crash mid-append) and failing on mid-file corruption."""
    records = []
    last = len(lines) - 1
    for index, line in enumerate(lines):
        try:
            record = json.loads(line)
        except ValueError:
            record = None
        if not (isinstance(record, dict)
                and isinstance(record.get("seq"), int) and "op" in record):
            if index == last:
                report.torn_tail_dropped += 1
                break
            raise RepositoryError(
                f"corrupt repository segment {segment!r}: unreadable "
                f"record at line {index} is not the final line")
        records.append(record)
    return records


def _read_order_log(dfs, order_log, order_gen, report):
    """Reconstruct a v5 manifest's recorded scan order from its order
    log, applying the replay rule:

    * records are JSONL, each carrying its writing compaction's ``gen``:
      either a **full** order (``{"gen", "full": [[key, seq], ...]}`` —
      written on rebase) or a **delta** against the previous record's
      reconstruction (``{"gen", "removed", "inserted"}``);
    * a torn final line (a crash mid-append) is dropped, like a torn
      segment tail;
    * records with ``gen > order_gen`` are **orphans** — appended by a
      compaction that crashed before its manifest swap made them
      authoritative — and are *skipped*, never applied (they describe an
      order the manifest's sections do not match); the count lands on
      ``report.orphan_order_records`` so attach() can heal with a
      rebase;
    * the reconstruction is the latest applicable full record with every
      later applicable delta applied in file order.
    """
    report.order_log_path = order_log
    report.order_gen = order_gen
    lines = (dfs.read_lines(order_log)
             if order_log is not None and dfs.exists(order_log) else [])
    records = []
    last = len(lines) - 1
    for index, line in enumerate(lines):
        try:
            record = json.loads(line)
        except ValueError:
            record = None
        if not (isinstance(record, dict)
                and isinstance(record.get("gen"), int)
                and ("full" in record or "removed" in record
                     or "inserted" in record)):
            if index == last:
                report.torn_tail_dropped += 1
                break
            raise RepositoryError(
                f"corrupt repository order log {order_log!r}: unreadable "
                f"record at line {index} is not the final line")
        records.append(record)
    applicable = [record for record in records if record["gen"] <= order_gen]
    report.orphan_order_records = len(records) - len(applicable)
    report.order_records = len(applicable)
    base = None
    for index, record in enumerate(applicable):
        if "full" in record:
            base = index
    if base is None:
        if applicable:
            raise RepositoryError(
                f"corrupt repository order log {order_log!r}: delta "
                f"record(s) at or below generation {order_gen} with no "
                f"full base record")
        report.recorded_order = []
        return []
    order = [list(pair) for pair in applicable[base]["full"]]
    for record in applicable[base + 1:]:
        order = apply_order_delta(order, record)
    report.recorded_order = [list(pair) for pair in order]
    return order


def _force_recorded_order(repository, order, by_key, partial=False):
    """Pin the phase-1 state to the manifest's recorded scan order and
    tie-break sequences.

    ``order`` is ``[[key, sequence], ...]`` over every entry live when
    the manifest was written; after phase 1 the repository must hold
    exactly that set (the compaction protocol flushes every record at or
    below ``last_seq`` before the manifest lands), so a mismatch means
    the durable files are corrupt, not merely stale. ``partial`` marks a
    load into a pre-populated explicit target: the recorded order is
    not a permutation of the union, so — exactly like the v1-v3
    loaders' ``_restore_saved_order`` no-op — pinning is skipped (key
    resolution is still checked: the keys come from this file alone).
    """
    entries = []
    sequences = []
    for key, sequence in order:
        entry = by_key.get(key)
        if entry is None:
            raise RepositoryError(
                f"corrupt repository manifest: scan order references "
                f"key {key!r}, which no section or segment defines")
        entries.append(entry)
        sequences.append(sequence)
    if partial:
        return
    if len(entries) != len(repository):
        raise RepositoryError(
            f"corrupt repository manifest: scan order lists "
            f"{len(entries)} entr(ies), sections+segments rebuilt "
            f"{len(repository)}")
    if not entries:
        return
    for entry, sequence in zip(entries, sequences):
        entry._sequence = sequence
    repository._sequence = max(sequences) + 1
    repository.force_scan_order(entries)
