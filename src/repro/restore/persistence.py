"""Repository persistence: survive a ReStore restart.

The paper's repository is durable state ("Facebook stores the result of
any query ... for seven days"); this module saves/loads it through the
DFS itself.

Plan matching needs only operator **signatures and DAG structure** — not
executable closures — so entries are serialized as *skeleton plans*: one
record per operator carrying its kind, canonical signature, schema, and
input edges. A reloaded repository matches and rewrites exactly like the
original (rewriting takes its schema from the *input* plan's frontier, so
skeletons never need to execute). Statistics, input versions, ownership,
provenance, and the plan fingerprint round-trip too; Load records are
rebuilt as real :class:`~repro.physical.operators.POLoad` operators (the
path and version are recovered from the canonical signature) so a
reloaded repository rebuilds its leaf-load and fingerprint indexes
identically to the original's.

File formats (spec in ``docs/ARCHITECTURE.md``):

* **v1 (legacy, unsharded)** — one JSON entry record per line, in scan
  order. Written for plain :class:`Repository` instances; reloading by
  sequential insert reproduces the scan order exactly (the order is a
  pure function of the entry set with ties broken by insertion
  sequence).

* **v2 (sharded)** — a **manifest** header line
  (``{"restore-manifest": 2, "num_shards": N, "sections": [...]}``)
  followed by one JSONL **section per shard** (catch-all shard id
  ``-1``). Each section line wraps an entry record with its global scan
  ``position`` so the loader can re-insert in the original global
  priority order even though the file is grouped by shard.

``load_repository`` sniffs the format: a v2 manifest loads into a
:class:`~repro.restore.sharding.ShardedRepository` of the manifest's
shard count, a v1 file into a plain :class:`Repository` — unless the
caller passes an explicit ``repository`` target, which is how a
pre-shard v1 file migrates into a sharded deployment (the shard layout
is recomputed from the stable load-key hash, so no rewrite is needed).
"""

import json

from repro.common.errors import RepositoryError
from repro.data.schema import Field, Schema
from repro.data.types import DataType
from repro.physical.operators import PhysOp, POLoad, POStore
from repro.physical.plan import PhysicalPlan
from repro.restore.index import parse_load_signature
from repro.restore.repository import Repository, RepositoryEntry
from repro.restore.sharding import ShardedRepository
from repro.restore.stats import EntryStats


class SkeletonOp(PhysOp):
    """A deserialized operator: fixed signature, no executable payload."""

    def __init__(self, kind, signature, schema, inputs):
        super().__init__(inputs, schema)
        self.kind = kind
        self._signature = signature

    def signature(self):
        return self._signature

    def copy_with_inputs(self, inputs):
        return self._carry(
            SkeletonOp(self.kind, self._signature, self.schema, list(inputs))
        )


# --- Schema (de)serialization ---------------------------------------------------


def schema_to_json(schema):
    if schema is None:
        return None
    return [
        {
            "name": field.name,
            "dtype": field.dtype.value,
            "element": schema_to_json(field.element),
        }
        for field in schema.fields
    ]


def schema_from_json(data):
    if data is None:
        return None
    fields = [
        Field(item["name"], DataType(item["dtype"]),
              schema_from_json(item["element"]))
        for item in data
    ]
    return Schema(fields)


# --- Plan (de)serialization -----------------------------------------------------


def plan_to_json(plan):
    """Topologically-ordered operator records with input indices."""
    operators = plan.operators()
    index = {id(op): position for position, op in enumerate(operators)}
    records = []
    for op in operators:
        records.append(
            {
                "kind": op.kind,
                "signature": op.signature(),
                "schema": schema_to_json(op.schema),
                "inputs": [index[id(parent)] for parent in op.inputs],
                "store_path": op.path if isinstance(op, POStore) else None,
            }
        )
    return records


def plan_from_json(records):
    operators = []
    for record in records:
        inputs = [operators[i] for i in record["inputs"]]
        if record["store_path"] is not None:
            op = POStore(inputs[0], record["store_path"])
        else:
            op = _operator_from_record(record, inputs)
        operators.append(op)
    sinks = [op for op in operators if isinstance(op, POStore)]
    if len(sinks) != 1:
        raise RepositoryError(
            f"a serialized entry plan must have exactly one Store, got {len(sinks)}"
        )
    return PhysicalPlan(sinks)


def _operator_from_record(record, inputs):
    """Rebuild one non-Store operator.

    Loads come back as real POLoads (path/version recovered from the
    canonical signature) so the repository's leaf-load index can key a
    reloaded entry exactly as it keyed the original; everything else is a
    signature-preserving skeleton.
    """
    if record["kind"] == "load" and not inputs:
        parsed = parse_load_signature(record["signature"])
        if parsed is not None:
            path, version = parsed
            return POLoad(path, schema_from_json(record["schema"]), version)
    return SkeletonOp(record["kind"], record["signature"],
                      schema_from_json(record["schema"]), inputs)


# --- Repository (de)serialization ---------------------------------------------------


def entry_to_json(entry):
    stats = entry.stats
    return {
        "plan": plan_to_json(entry.plan),
        "fingerprint": entry.fingerprint,
        "output_path": entry.output_path,
        "input_versions": entry.input_versions,
        "owns_file": entry.owns_file,
        "origin": entry.origin,
        "stats": {
            "input_bytes": stats.input_bytes,
            "output_bytes": stats.output_bytes,
            "producing_job_time": stats.producing_job_time,
            "map_time": stats.map_time,
            "reduce_time": stats.reduce_time,
            "created_tick": stats.created_tick,
            "last_used_tick": stats.last_used_tick,
            "use_count": stats.use_count,
        },
    }


def entry_from_json(data):
    raw = data["stats"]
    stats = EntryStats(
        raw["input_bytes"], raw["output_bytes"], raw["producing_job_time"],
        map_time=raw["map_time"], reduce_time=raw["reduce_time"],
        created_tick=raw["created_tick"],
    )
    stats.last_used_tick = raw["last_used_tick"]
    stats.use_count = raw["use_count"]
    entry = RepositoryEntry(
        plan_from_json(data["plan"]),
        data["output_path"],
        stats,
        input_versions=data["input_versions"],
        owns_file=data["owns_file"],
        origin=data["origin"],
    )
    # The saved fingerprint is derivable state: the plan round-trips its
    # signatures, so the recomputed hash is authoritative. A stale saved
    # value (e.g. after a signature-canonicalization change in a newer
    # release) must not brick the restart — the lazily recomputed
    # fingerprint simply wins, and the repository re-indexes with it.
    return entry


DEFAULT_REPOSITORY_PATH = "/restore/repository.jsonl"

#: manifest marker key; its value is the format version
MANIFEST_KEY = "restore-manifest"
MANIFEST_VERSION = 2


def save_repository(repository, dfs, path=DEFAULT_REPOSITORY_PATH,
                    ranker=None):
    """Persist the repository through the DFS.

    A plain :class:`Repository` is written in the v1 single-file format
    (one entry record per line, scan order); a
    :class:`~repro.restore.sharding.ShardedRepository` is written in the
    v2 format: a manifest header followed by per-shard sections whose
    lines carry each entry's global scan position.

    ``ranker`` (a :class:`~repro.restore.ranking.CandidateRanker` or its
    name) is recorded in the v2 manifest as deployment metadata — a
    restarted service can see which candidate ranking the saved
    repository was operated under. It does not affect the entries
    themselves (ranking reorders probes, never state), and the v1 format
    has no header to carry it.
    """
    ranker_name = getattr(ranker, "name", ranker)
    if isinstance(repository, ShardedRepository):
        return _save_sharded(repository, dfs, path, ranker_name)
    lines = [json.dumps(entry_to_json(entry), sort_keys=True)
             for entry in repository.scan()]
    return dfs.write_lines(path, lines, overwrite=True)


def _save_sharded(repository, dfs, path, ranker_name=None):
    positions = {entry.entry_id: position
                 for position, entry in enumerate(repository.scan())}
    partitions = repository.partitions()
    sections = []
    body = []
    for shard in partitions:
        members = sorted(shard, key=lambda entry: positions[entry.entry_id])
        if not members:
            continue
        sections.append({"shard": shard.shard_id, "entries": len(members)})
        for entry in members:
            body.append(json.dumps(
                {"position": positions[entry.entry_id],
                 "entry": entry_to_json(entry)},
                sort_keys=True))
    header = {MANIFEST_KEY: MANIFEST_VERSION,
              "num_shards": repository.num_shards,
              "entries": len(repository),
              "sections": sections}
    if ranker_name is not None:
        header["ranker"] = ranker_name
    manifest = json.dumps(header, sort_keys=True)
    return dfs.write_lines(path, [manifest] + body, overwrite=True)


def load_repository(dfs, path=DEFAULT_REPOSITORY_PATH, repository=None):
    """Rebuild a repository from a saved file; missing file -> empty.

    ``repository`` is the target to load into. When omitted, the file
    format decides: a v2 manifest builds a
    :class:`~repro.restore.sharding.ShardedRepository` with the
    manifest's shard count, a v1 file builds a plain
    :class:`Repository`. Passing an explicit target migrates across
    formats in either direction — in particular, a pre-shard v1 file
    loads into a ``ShardedRepository`` with identical scan order and
    match decisions (the shard layout is a pure function of the entries'
    load keys).
    """
    if not dfs.exists(path):
        return repository if repository is not None else Repository()
    lines = dfs.read_lines(path)
    if not lines:
        return repository if repository is not None else Repository()
    first = json.loads(lines[0])
    if isinstance(first, dict) and MANIFEST_KEY in first:
        return _load_sharded(first, lines[1:], repository)
    if repository is None:
        repository = Repository()
    for line in lines:
        repository.insert(entry_from_json(json.loads(line)))
    return repository


def _load_sharded(manifest, body, repository):
    if manifest[MANIFEST_KEY] != MANIFEST_VERSION:
        raise RepositoryError(
            f"unsupported repository format version {manifest[MANIFEST_KEY]!r}")
    expected = manifest.get("entries", len(body))
    if len(body) != expected:
        raise RepositoryError(
            f"repository file truncated: manifest promises {expected} "
            f"entr(ies), file holds {len(body)}")
    if repository is None:
        repository = ShardedRepository(num_shards=manifest["num_shards"])
    # Surface the manifest (format version, shard count, ranker
    # metadata) to the caller; harmless no-op on a plain Repository
    # target, which simply gains the attribute.
    repository.manifest_metadata = dict(manifest)
    records = [json.loads(line) for line in body]
    # Sections group lines by shard; the global priority order is the
    # insertion order that reproduces the saved scan order, so sort by
    # the recorded global position before inserting.
    records.sort(key=lambda record: record["position"])
    for record in records:
        repository.insert(entry_from_json(record["entry"]))
    return repository
