"""The ReStore repository of stored MapReduce job outputs.

Each record holds (paper Section 2.2): the physical plan of the job that
produced the output, the output's filename in the DFS, and statistics
about the producing job and about reuse frequency.

The entries are kept **partially ordered** so that a sequential scan finds
the best match first (paper Section 3):

1. a plan that subsumes another (contains all its operators) comes first;
2. otherwise, higher input/output size ratio first, then longer producing
   job execution time first.

The scan order is the *priority-greedy topological order* of the strict
subsumption DAG: repeatedly emit the ready entry with the best rule-2
metrics (ties broken by insertion sequence, so the order is a pure
function of the entry set). The seed implementation re-derived it from
scratch with O(n^2) containment tests per insert; this version maintains
it incrementally on top of :mod:`repro.restore.index`:

* ``find_equivalent`` is a fingerprint-bucket lookup (O(1) plus an exact
  confirmation of the bucket) instead of a full scan;
* on ``insert``, subsumption edges are computed only against entries the
  leaf-load index deems reachable (containment forces the contained
  plan's loads to be a subset of the container's), and an isolated entry
  is spliced into the existing order without rerunning Kahn's algorithm;
* ``match_candidates`` gives the matcher only the entries whose loads are
  a subset of the job's, in scan order — provably the same first match as
  the seed's full scan;
* ``remove`` prunes the subsumption cache, the edge sets, and all index
  buckets, so eviction-heavy retention policies no longer leak.

The frozen seed implementation lives in :mod:`repro.restore.baseline` and
the property suite asserts order- and decision-equivalence against it.
"""

import heapq
import itertools

from repro.common.errors import RepositoryError
from repro.restore.index import LoadIndex, leaf_loads, plan_fingerprint
from repro.restore.matcher import contains


class RepositoryEntry:
    """One stored job output (paper Section 2.2).

    Holds the producing job's physical plan (``Loads → … → Store``), the
    output's DFS path, execution/reuse statistics
    (:class:`~repro.restore.stats.EntryStats` — the ordering and
    retention rules read them), the versions of the datasets the plan
    read (Rule 4 invalidation), whether ReStore owns the stored file
    (safe to delete on evict), and whole-job/sub-job provenance.
    """

    _ids = itertools.count(1)

    def __init__(self, plan, output_path, stats, input_versions=None,
                 owns_file=True, origin="whole-job"):
        self.entry_id = f"e{next(self._ids)}"
        #: canonical physical plan: Loads -> ... -> Store(output_path)
        self.plan = plan
        self.output_path = output_path
        self.stats = stats
        #: dataset versions read by the producing job: {path: version}
        self.input_versions = dict(input_versions or {})
        #: whether the DFS file belongs to ReStore (safe to delete on evict)
        self.owns_file = owns_file
        #: "whole-job" or "sub-job" (provenance, for reporting)
        self.origin = origin
        self._fingerprint = None

    @property
    def fingerprint(self):
        """Canonical structural hash of the entry's plan (computed once,
        round-tripped by persistence)."""
        if self._fingerprint is None:
            self._fingerprint = plan_fingerprint(self.plan)
        return self._fingerprint

    @property
    def num_operators(self):
        return len(self.plan.operators())

    def describe(self):
        return (
            f"{self.entry_id} [{self.origin}] -> {self.output_path} "
            f"({self.stats.output_bytes} B, ratio {self.stats.reduction_ratio:.1f})"
        )

    def __repr__(self):
        return f"<RepositoryEntry {self.entry_id} {self.output_path}>"


_NO_EDGES = frozenset()


def _priority(entry):
    # higher ratio first, then longer producing time, then age
    return (-entry.stats.reduction_ratio,
            -entry.stats.producing_job_time,
            entry._sequence)


class Repository:
    """Ordered collection of :class:`RepositoryEntry`.

    ``scan()`` yields entries in match-priority order; ``insert`` keeps the
    partial order; ``find_equivalent`` deduplicates re-registrations of the
    same computation; ``match_candidates`` narrows a matcher pass to the
    entries the leaf-load index cannot rule out.
    """

    def __init__(self):
        self._entries = []
        self._order = None            # cached immutable scan() snapshot
        self._rank = None             # entry_id -> scan position
        self._rank_for = None         # the scan() snapshot _rank was built from
        self._by_id = {}
        self._sequence = 0
        self._subsumption_cache = {}
        self._cache_keys = {}         # entry id -> cache keys involving it
        self._load_index = LoadIndex()
        self._buckets = {}            # fingerprint -> [entries, insert order]
        self._edges_out = {}          # a subsumes b: edges_out[a] ∋ b (ids)
        self._edges_in = {}
        # After a removal the scan order is "previous order minus the
        # removed entry" (matching the seed, which never reorders on
        # remove) — which is NOT necessarily the greedy order of the
        # remaining set, so the next insert cannot use the splice fast
        # path and must rerun Kahn over the cached edges.
        self._order_is_greedy = True
        # Change-event channel: callables invoked as listener(op, entry)
        # with op in {"insert", "remove", "use"} after each mutation.
        # This is what incremental persistence (repro.restore.wal)
        # subscribes to; an empty list costs one truth test per mutation.
        self._listeners = []

    # Change events ---------------------------------------------------------

    def add_listener(self, listener):
        """Subscribe ``listener(op, entry)`` to insert/remove/use events."""
        self._listeners.append(listener)

    def remove_listener(self, listener):
        """Unsubscribe a listener previously added (no-op when absent)."""
        try:
            self._listeners.remove(listener)
        except ValueError:
            pass

    def _notify(self, op, entry):
        for listener in self._listeners:
            listener(op, entry)

    def record_use(self, entry, tick):
        """Stamp a reuse on ``entry`` and emit a ``"use"`` change event.

        The manager routes use-stamps through here (instead of mutating
        ``entry.stats`` directly) so that Rule 3 reuse windows survive a
        restart when a :class:`~repro.restore.wal.RepositoryLog` is
        attached.
        """
        entry.stats.record_use(tick)
        self._notify("use", entry)

    def shard_id_of(self, entry):
        """The shard id owning ``entry`` — None for an unsharded
        repository (overridden by
        :class:`~repro.restore.sharding.ShardedRepository`)."""
        return None

    def shard_sizes(self):
        """Entry count per partition, ``{shard_id: entries}`` — the
        denominator of segmented persistence's per-shard dirty ratio
        (:meth:`~repro.restore.wal.RepositoryLog.dirty_shards`). An
        unsharded repository is one partition under the ``None`` id,
        matching the shard tag its change events carry."""
        return {None: len(self)}

    def shard_members(self, shard_id):
        """The entries owned by partition ``shard_id`` (unordered — the
        segmented snapshot writer re-sorts by scan rank). The unsharded
        repository owns everything in its single ``None`` partition."""
        if shard_id is not None:
            raise RepositoryError(
                f"an unsharded repository has no shard {shard_id!r}")
        return tuple(self._entries)

    def close(self):
        """Release any resources the repository holds. The plain
        repository holds none; the sharded subclass shuts down its probe
        executor (thread pool or worker processes) here — having the
        method on the base class lets :meth:`ReStore.close` treat every
        repository flavor uniformly."""

    def __len__(self):
        return len(self._entries)

    def __iter__(self):
        return iter(self._entries)

    def scan(self):
        """Entries in the order the matcher must try them.

        Returns an immutable snapshot; the same tuple object is handed
        out until an insert or removal changes the order, so rescan loops
        no longer allocate a fresh list per pass.
        """
        if self._order is None:
            self._order = tuple(self._entries)
        return self._order

    def match_candidates(self, plan, ranker=None):
        """Entries that could be contained in ``plan``, in try order.

        Containment maps every entry Load onto an equally-signed Load of
        the input plan, so only entries whose ``(path, version)`` load set
        is a subset of the plan's can match; all others are skipped
        without a containment test. Falls back to the full scan when the
        plan's loads cannot be keyed.

        Without a ``ranker`` (or with a structural one) the candidates
        come back in global scan order — the paper's priority order,
        bit-identical to the seed. A non-structural
        :class:`~repro.restore.ranking.CandidateRanker` reorders exactly
        the same candidate *set* (ranking never adds or drops entries;
        the property suite asserts the permutation).
        """
        candidates = self._filtered_candidates(plan)
        if ranker is None or ranker.is_structural:
            return candidates
        return tuple(ranker.order(candidates, self))

    def match_candidates_batch(self, plans, ranker=None):
        """Candidate tuples for many plans, positionally aligned with
        ``plans``. Here simply the per-plan calls; the process-backed
        sharded repository overrides this to ship the whole batch to
        each consulted worker in one message."""
        return [self.match_candidates(plan, ranker=ranker)
                for plan in plans]

    @property
    def worker_pool(self):
        """The worker-process pool routing this repository's probes —
        None unless this is a :class:`ShardedRepository` built with
        ``executor="processes"``."""
        return None

    def _filtered_candidates(self, plan):
        """The load-index filter half of :meth:`match_candidates`, in
        scan order."""
        candidate_ids = self._load_index.candidate_ids(leaf_loads(plan))
        if candidate_ids is None:
            return self.scan()
        if not candidate_ids:
            return ()
        return tuple(entry for entry in self.scan()
                     if entry.entry_id in candidate_ids)

    def scan_rank(self):
        """entry_id -> position in the global scan order (cached per
        scan snapshot; invalidated automatically on insert/remove)."""
        order = self.scan()
        if self._rank_for is not order:
            self._rank = {entry.entry_id: position
                          for position, entry in enumerate(order)}
            self._rank_for = order
        return self._rank

    def subsumption_edges_among(self, entry_ids):
        """Strict-subsumption edges restricted to ``entry_ids``:
        ``{a: {b, ...}}`` where entry ``a``'s plan strictly contains
        entry ``b``'s. Rankers use this to keep the paper's rule 1 (a
        container is tried before everything it subsumes) a hard
        constraint while reordering the rest."""
        ids = set(entry_ids)
        return {entry_id: self._edges_out.get(entry_id, _NO_EDGES) & ids
                for entry_id in ids}

    def entry(self, entry_id):
        """The entry with ``entry_id`` (:class:`RepositoryError` if absent)."""
        try:
            return self._by_id[entry_id]
        except KeyError:
            raise RepositoryError(f"no entry {entry_id!r}") from None

    def total_stored_bytes(self):
        return sum(entry.stats.output_bytes for entry in self._entries)

    # Insertion ------------------------------------------------------------

    def insert(self, entry):
        """Insert keeping the partial order.

        Rule 1 (subsumption) is a hard constraint: a plan that contains
        another's operators scans first. Containment is transitive, so the
        strict-subsumption relation is a DAG; the scan order is its
        topological order, with rule 2's metrics (input/output ratio, then
        producing-job time — higher first) breaking ties among entries no
        constraint relates.

        Subsumption edges are discovered only against entries the load
        index deems reachable. When the new entry turns out isolated (no
        edges either way) and the current order is still greedy, it is
        spliced in directly: an always-ready node is emitted by the greedy
        scheduler at the first step where its priority beats the entry the
        scheduler would otherwise pick, leaving all other relative
        positions untouched.
        """
        entry._sequence = self._sequence
        self._sequence += 1
        entry_loads = leaf_loads(entry.plan)
        touched = self._discover_edges(entry, entry_loads)

        self._by_id[entry.entry_id] = entry
        self._load_index.add(entry, entry_loads)
        self._buckets.setdefault(entry.fingerprint, []).append(entry)
        self._edges_out.setdefault(entry.entry_id, set())
        self._edges_in.setdefault(entry.entry_id, set())

        if touched or not self._order_is_greedy:
            self._entries.append(entry)
            self._recompute_order()
            self._order_is_greedy = True
        else:
            self._splice(entry)
        self._order = None
        self._post_insert(entry)
        self._notify("insert", entry)
        return entry

    def insert_batch(self, entries):
        """Insert ``entries`` in order, then flush their shard groups.

        Semantically identical to calling :meth:`insert` sequentially —
        scan order, subsumption edges and change events are exactly the
        per-entry ones — but the inserted entries are grouped by owning
        shard and handed to :meth:`_flush_inserted_groups` once, so a
        worker-pool-backed repository ships one grouped mutation message
        per touched shard instead of serializing through a later probe.
        Returns the entries, positionally aligned with ``entries``.
        """
        inserted = [self.insert(entry) for entry in entries]
        groups = {}
        for entry in inserted:
            groups.setdefault(self.shard_id_of(entry), []).append(entry)
        if groups:
            self._flush_inserted_groups(groups)
        return inserted

    def _flush_inserted_groups(self, groups):
        """Subclass hook: ``{shard_id: [entries]}`` just inserted by one
        :meth:`insert_batch` call. The base repository has no shards and
        no buffers — nothing to flush."""

    def _post_insert(self, entry):
        """Subclass hook, called after ``entry`` is fully indexed but
        before the insert change event fires (sharding registers the
        entry with its owning shard here, so listeners observing the
        event see a consistent shard layout)."""

    def _post_remove(self, entry):
        """Subclass hook, the removal counterpart of :meth:`_post_insert`
        (called after the remove change event fires, so listeners can
        still resolve the entry's shard via :meth:`shard_id_of`)."""

    def _discover_edges(self, entry, entry_loads):
        """Record subsumption edges between ``entry`` and the index-reachable
        candidates; returns True when any edge was found."""
        touched = False
        # Entries the new plan could strictly contain: their loads must be
        # a subset of the new plan's loads.
        below_ids = self._load_index.candidate_ids(entry_loads)
        if below_ids is None:
            below_ids = set(self._by_id)
        # Entries that could strictly contain the new plan: their loads
        # must be a superset of the new plan's loads (unkeyable new plans
        # must conservatively consider everything).
        if entry_loads is None:
            above_ids = set(self._by_id)
        else:
            above_ids = self._load_index.superset_ids(entry_loads)
        for other_id in below_ids:
            if self._subsumes(entry, self._by_id[other_id]):
                self._edges_out.setdefault(entry.entry_id, set()).add(other_id)
                self._edges_in[other_id].add(entry.entry_id)
                touched = True
        for other_id in above_ids:
            if self._subsumes(self._by_id[other_id], entry):
                self._edges_out[other_id].add(entry.entry_id)
                self._edges_in.setdefault(entry.entry_id, set()).add(other_id)
                touched = True
        return touched

    def _subsumes(self, a, b):
        """Does entry ``a``'s plan strictly contain entry ``b``'s?"""
        key = (a.entry_id, b.entry_id)
        cached = self._subsumption_cache.get(key)
        if cached is None:
            cached = contains(b.plan, a.plan) and not contains(a.plan, b.plan)
            self._subsumption_cache[key] = cached
            self._cache_keys.setdefault(a.entry_id, set()).add(key)
            self._cache_keys.setdefault(b.entry_id, set()).add(key)
        return cached

    def _splice(self, entry):
        """Insert an edge-free entry into a greedy order, keeping it greedy."""
        rank = _priority(entry)
        for position, existing in enumerate(self._entries):
            if rank < _priority(existing):
                self._entries.insert(position, entry)
                return
        self._entries.append(entry)

    def _recompute_order(self):
        """Priority-greedy topological order over the cached edge sets.

        Equivalent to the seed's Kahn's-algorithm-with-resort, but with a
        heap and zero containment tests: the priority key is total (the
        insertion sequence is unique), so "sort the ready list, pop the
        head" and "pop the heap minimum" emit identical orders.
        """
        entries = self._entries
        # remove() prunes both edge directions, so every id in the edge
        # sets is a live entry — no aliveness filtering needed here.
        blockers = {entry.entry_id: len(self._edges_in[entry.entry_id])
                    for entry in entries}
        ready = [(_priority(entry), entry) for entry in entries
                 if blockers[entry.entry_id] == 0]
        heapq.heapify(ready)
        ordered = []
        while ready:
            _, entry = heapq.heappop(ready)
            ordered.append(entry)
            for dependent_id in self._edges_out[entry.entry_id]:
                blockers[dependent_id] -= 1
                if blockers[dependent_id] == 0:
                    dependent = self._by_id[dependent_id]
                    heapq.heappush(ready, (_priority(dependent), dependent))
        if len(ordered) != len(entries):
            raise RepositoryError("subsumption relation is cyclic (bug)")
        self._entries = ordered

    def force_scan_order(self, entries):
        """Adopt ``entries`` — a permutation of the current contents — as
        the scan order.

        Persistence loaders need this for exact state reconstruction: a
        live repository's order after a removal is "previous order minus
        the removed entry" (matching the seed), which is *not*
        necessarily the greedy order of the remaining set — so reloading
        by sequential insert, which re-normalizes greedily, can diverge
        from the order the file recorded. The saved positions are
        authoritative; the order is marked non-greedy so the next insert
        reruns Kahn exactly as the live repository would.
        """
        entries = list(entries)
        if [e.entry_id for e in entries] == [e.entry_id for e in self._entries]:
            return
        # Identity, not id-string, and an exact length: a list that
        # duplicates one entry while dropping another (or that carries
        # look-alike objects sharing ids with the repository's own
        # instances) must not desynchronize _entries from _by_id.
        if (len(entries) != len(self._entries)
                or {id(entry) for entry in entries}
                != {id(entry) for entry in self._entries}):
            raise RepositoryError(
                "force_scan_order requires a permutation of the "
                "repository's current entries")
        self._entries = entries
        self._order = None
        self._order_is_greedy = False

    def find_equivalent(self, plan):
        """An entry computing exactly ``plan`` (mutual containment), if any.

        Fingerprint-equal entries are the only possible equivalents, so
        only that bucket is confirmed with the exact mutual-containment
        test; among several equivalents (possible via direct inserts) the
        one earliest in scan order is returned, as the seed's linear scan
        would.
        """
        if len(plan.stores()) != 1:
            # Degenerate probe (no single match frontier): fall back to
            # the seed's literal scan so behavior stays bit-identical —
            # an empty repository answers None instead of raising.
            for entry in self._entries:
                if contains(entry.plan, plan) and contains(plan, entry.plan):
                    return entry
            return None
        bucket = self._buckets.get(plan_fingerprint(plan))
        if not bucket:
            return None
        matches = [entry for entry in bucket
                   if contains(entry.plan, plan) and contains(plan, entry.plan)]
        if not matches:
            return None
        if len(matches) == 1:
            return matches[0]
        positions = {entry.entry_id: index
                     for index, entry in enumerate(self._entries)}
        return min(matches, key=lambda entry: positions[entry.entry_id])

    # Removal --------------------------------------------------------------------

    def remove(self, entry, dfs=None):
        """Drop ``entry``; delete its file when ReStore owns it.

        All index state referencing the entry is pruned — including its
        pairs in the subsumption cache, which the seed left behind to grow
        without bound under eviction-heavy retention policies.
        """
        try:
            self._entries.remove(entry)
        except ValueError as exc:
            raise RepositoryError(f"{entry!r} is not in the repository") from exc
        entry_id = entry.entry_id
        self._order = None
        self._order_is_greedy = False
        del self._by_id[entry_id]
        self._load_index.discard(entry)
        bucket = self._buckets.get(entry.fingerprint)
        if bucket is not None:
            bucket[:] = [kept for kept in bucket if kept is not entry]
            if not bucket:
                del self._buckets[entry.fingerprint]
        for other_id in self._edges_out.pop(entry_id, ()):
            self._edges_in.get(other_id, set()).discard(entry_id)
        for other_id in self._edges_in.pop(entry_id, ()):
            self._edges_out.get(other_id, set()).discard(entry_id)
        for key in self._cache_keys.pop(entry_id, ()):
            self._subsumption_cache.pop(key, None)
            partner = key[0] if key[1] == entry_id else key[1]
            partner_keys = self._cache_keys.get(partner)
            if partner_keys is not None:
                partner_keys.discard(key)
        self._notify("remove", entry)
        self._post_remove(entry)
        if dfs is not None and entry.owns_file:
            dfs.delete_if_exists(entry.output_path)

    def describe(self):
        lines = [f"Repository: {len(self._entries)} entr(ies)"]
        lines.extend(f"- {entry.describe()}" for entry in self._entries)
        return "\n".join(lines)
