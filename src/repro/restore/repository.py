"""The ReStore repository of stored MapReduce job outputs.

Each record holds (paper Section 2.2): the physical plan of the job that
produced the output, the output's filename in the DFS, and statistics
about the producing job and about reuse frequency.

The entries are kept **partially ordered** so that a sequential scan finds
the best match first (paper Section 3):

1. a plan that subsumes another (contains all its operators) comes first;
2. otherwise, higher input/output size ratio first, then longer producing
   job execution time first.
"""

import itertools

from repro.common.errors import RepositoryError
from repro.restore.matcher import contains


class RepositoryEntry:
    """One stored job output."""

    _ids = itertools.count(1)

    def __init__(self, plan, output_path, stats, input_versions=None,
                 owns_file=True, origin="whole-job"):
        self.entry_id = f"e{next(self._ids)}"
        #: canonical physical plan: Loads -> ... -> Store(output_path)
        self.plan = plan
        self.output_path = output_path
        self.stats = stats
        #: dataset versions read by the producing job: {path: version}
        self.input_versions = dict(input_versions or {})
        #: whether the DFS file belongs to ReStore (safe to delete on evict)
        self.owns_file = owns_file
        #: "whole-job" or "sub-job" (provenance, for reporting)
        self.origin = origin

    @property
    def num_operators(self):
        return len(self.plan.operators())

    def describe(self):
        return (
            f"{self.entry_id} [{self.origin}] -> {self.output_path} "
            f"({self.stats.output_bytes} B, ratio {self.stats.reduction_ratio:.1f})"
        )

    def __repr__(self):
        return f"<RepositoryEntry {self.entry_id} {self.output_path}>"


class Repository:
    """Ordered collection of :class:`RepositoryEntry`.

    ``scan()`` yields entries in match-priority order; ``insert`` keeps the
    partial order; ``find_equivalent`` deduplicates re-registrations of the
    same computation.
    """

    def __init__(self):
        self._entries = []
        self._sequence = 0
        self._subsumption_cache = {}

    def __len__(self):
        return len(self._entries)

    def __iter__(self):
        return iter(self._entries)

    def scan(self):
        """Entries in the order the matcher must try them."""
        return list(self._entries)

    def entry(self, entry_id):
        for entry in self._entries:
            if entry.entry_id == entry_id:
                return entry
        raise RepositoryError(f"no entry {entry_id!r}")

    def total_stored_bytes(self):
        return sum(entry.stats.output_bytes for entry in self._entries)

    # Insertion ------------------------------------------------------------

    def insert(self, entry):
        """Insert keeping the partial order.

        Rule 1 (subsumption) is a hard constraint: a plan that contains
        another's operators scans first. Containment is transitive, so the
        strict-subsumption relation is a DAG; the scan order is its
        topological order, with rule 2's metrics (input/output ratio, then
        producing-job time — higher first) breaking ties among entries no
        constraint relates.
        """
        entry._sequence = self._sequence
        self._sequence += 1
        self._entries.append(entry)
        self._reorder()
        return entry

    def _subsumes(self, a, b):
        """Does entry ``a``'s plan strictly contain entry ``b``'s?"""
        key = (a.entry_id, b.entry_id)
        cached = self._subsumption_cache.get(key)
        if cached is None:
            cached = contains(b.plan, a.plan) and not contains(a.plan, b.plan)
            self._subsumption_cache[key] = cached
        return cached

    def _reorder(self):
        """Kahn's algorithm over subsumption edges, metric-prioritized."""
        entries = self._entries
        blockers = {entry.entry_id: 0 for entry in entries}
        dependents = {entry.entry_id: [] for entry in entries}
        for a in entries:
            for b in entries:
                if a is not b and self._subsumes(a, b):
                    blockers[b.entry_id] += 1
                    dependents[a.entry_id].append(b)

        def priority(entry):
            # higher ratio first, then longer producing time, then age
            return (-entry.stats.reduction_ratio,
                    -entry.stats.producing_job_time,
                    entry._sequence)

        ready = sorted(
            (entry for entry in entries if blockers[entry.entry_id] == 0),
            key=priority,
        )
        ordered = []
        while ready:
            entry = ready.pop(0)
            ordered.append(entry)
            changed = False
            for dependent in dependents[entry.entry_id]:
                blockers[dependent.entry_id] -= 1
                if blockers[dependent.entry_id] == 0:
                    ready.append(dependent)
                    changed = True
            if changed:
                ready.sort(key=priority)
        if len(ordered) != len(entries):
            raise RepositoryError("subsumption relation is cyclic (bug)")
        self._entries = ordered

    def find_equivalent(self, plan):
        """An entry computing exactly ``plan`` (mutual containment), if any."""
        for entry in self._entries:
            if contains(entry.plan, plan) and contains(plan, entry.plan):
                return entry
        return None

    # Removal --------------------------------------------------------------------

    def remove(self, entry, dfs=None):
        """Drop ``entry``; delete its file when ReStore owns it."""
        try:
            self._entries.remove(entry)
        except ValueError as exc:
            raise RepositoryError(f"{entry!r} is not in the repository") from exc
        if dfs is not None and entry.owns_file:
            dfs.delete_if_exists(entry.output_path)

    def describe(self):
        lines = [f"Repository: {len(self._entries)} entr(ies)"]
        lines.extend(f"- {entry.describe()}" for entry in self._entries)
        return "\n".join(lines)
