"""Statistics attached to repository entries (paper Sections 3 and 5).

For every stored job output, the repository keeps the statistics that the
MapReduce system collected while producing it — input/output sizes, the
execution time of the producing job — plus reuse-tracking counters used by
the ordering rules and the eviction rules.

Two operational counter families ride along:

* :class:`MatchCounters` — per-workflow accounting of *why* repository
  candidates offered to the matcher were not used (missing output file,
  failed containment), attached to every
  :class:`~repro.restore.manager.ReStoreReport`;
* :class:`ShardStats` — per-shard probe/candidate/hit/occupancy counters
  maintained by :class:`~repro.restore.sharding.ShardedRepository`.
"""


class EntryStats:
    """Execution + reuse statistics for one repository entry."""

    __slots__ = (
        "input_bytes",
        "output_bytes",
        "producing_job_time",
        "map_time",
        "reduce_time",
        "created_tick",
        "last_used_tick",
        "use_count",
    )

    def __init__(self, input_bytes, output_bytes, producing_job_time,
                 map_time=0.0, reduce_time=0.0, created_tick=0):
        self.input_bytes = input_bytes
        self.output_bytes = output_bytes
        self.producing_job_time = producing_job_time
        self.map_time = map_time
        self.reduce_time = reduce_time
        self.created_tick = created_tick
        self.last_used_tick = created_tick
        self.use_count = 0

    @property
    def reduction_ratio(self):
        """Input bytes per output byte — ordering rule 2's first metric
        ("the ratio between the size of the input data and output data;
        the higher the better")."""
        return self.input_bytes / max(1, self.output_bytes)

    def record_use(self, tick):
        self.use_count += 1
        self.last_used_tick = max(self.last_used_tick, tick)

    def __repr__(self):
        return (
            f"EntryStats(in={self.input_bytes}B, out={self.output_bytes}B, "
            f"time={self.producing_job_time:.1f}s, uses={self.use_count})"
        )


class MatchCounters:
    """Why matcher candidates were (not) used, for one workflow.

    ``match_candidates`` narrows the repository to entries that *could*
    match; this records what happened to each candidate the matcher then
    actually tried:

    * ``matched`` — containment held and the job was rewritten;
    * ``skipped_missing_output`` — the entry's stored file is gone from
      the DFS (evicted externally, or deleted by an operator);
    * ``skipped_no_containment`` — the candidate survived the load-index
      (or shard-merge) filter but the exact containment test failed.

    The split explains reports beyond "how many rewrites happened": a
    high ``skipped_no_containment`` count means the candidate filter is
    loose for this workload, a high ``skipped_missing_output`` count
    means the repository is stale relative to the DFS.
    """

    __slots__ = ("candidates_tried", "matched", "skipped_missing_output",
                 "skipped_no_containment")

    def __init__(self):
        self.candidates_tried = 0
        self.matched = 0
        self.skipped_missing_output = 0
        self.skipped_no_containment = 0

    @property
    def skipped(self):
        return self.skipped_missing_output + self.skipped_no_containment

    def as_dict(self):
        return {
            "candidates_tried": self.candidates_tried,
            "matched": self.matched,
            "skipped_missing_output": self.skipped_missing_output,
            "skipped_no_containment": self.skipped_no_containment,
        }

    def describe(self):
        return (
            f"{self.candidates_tried} candidate(s) tried: "
            f"{self.matched} matched, "
            f"{self.skipped_missing_output} skipped (missing output), "
            f"{self.skipped_no_containment} skipped (no containment)"
        )

    def __repr__(self):
        return f"MatchCounters({self.describe()})"


class ShardStats:
    """Probe/candidate/hit counters for one repository shard.

    ``occupancy`` is the shard's current entry count (maintained by the
    owning :class:`~repro.restore.sharding.ShardedRepository`), ``probes``
    counts ``match_candidates`` fan-outs that consulted this shard,
    ``candidates_returned`` the entries it contributed to merged candidate
    lists, and ``match_hits`` the rewrites that used one of its entries.
    """

    __slots__ = ("shard_id", "occupancy", "probes", "candidates_returned",
                 "match_hits")

    def __init__(self, shard_id):
        self.shard_id = shard_id
        self.occupancy = 0
        self.probes = 0
        self.candidates_returned = 0
        self.match_hits = 0

    def as_dict(self):
        return {
            "shard": self.shard_id,
            "occupancy": self.occupancy,
            "probes": self.probes,
            "candidates_returned": self.candidates_returned,
            "match_hits": self.match_hits,
        }

    def describe(self):
        return (
            f"shard {self.shard_id}: {self.occupancy} entr(ies), "
            f"{self.probes} probe(s), {self.candidates_returned} candidate(s), "
            f"{self.match_hits} hit(s)"
        )

    def __repr__(self):
        return f"ShardStats({self.describe()})"
