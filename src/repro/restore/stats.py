"""Statistics attached to repository entries (paper Sections 3 and 5).

For every stored job output, the repository keeps the statistics that the
MapReduce system collected while producing it — input/output sizes, the
execution time of the producing job — plus reuse-tracking counters used by
the ordering rules and the eviction rules.

Two operational counter families ride along:

* :class:`MatchCounters` — per-workflow accounting of *why* repository
  candidates offered to the matcher were not used (missing output file,
  failed containment), attached to every
  :class:`~repro.restore.manager.ReStoreReport`;
* :class:`ShardStats` — per-shard probe/candidate/hit/occupancy counters
  maintained by :class:`~repro.restore.sharding.ShardedRepository`;
* :class:`RankingLedger` — per-rewrite estimated vs realized savings
  (the :mod:`~repro.restore.ranking` cost model's error, observable on
  every :class:`~repro.restore.manager.ReStoreReport`);
* :class:`IngestStats` — enqueue/coalesce/reject/batch counters and a
  drain-latency reservoir maintained by the async ingest front-end
  (:mod:`~repro.restore.ingest`), attached to reports when
  ``ReStore(ingest="async")``.
"""


class EntryStats:
    """Execution + reuse statistics for one repository entry."""

    __slots__ = (
        "input_bytes",
        "output_bytes",
        "producing_job_time",
        "map_time",
        "reduce_time",
        "created_tick",
        "last_used_tick",
        "use_count",
    )

    def __init__(self, input_bytes, output_bytes, producing_job_time,
                 map_time=0.0, reduce_time=0.0, created_tick=0):
        self.input_bytes = input_bytes
        self.output_bytes = output_bytes
        self.producing_job_time = producing_job_time
        self.map_time = map_time
        self.reduce_time = reduce_time
        self.created_tick = created_tick
        self.last_used_tick = created_tick
        self.use_count = 0

    @property
    def reduction_ratio(self):
        """Input bytes per output byte — ordering rule 2's first metric
        ("the ratio between the size of the input data and output data;
        the higher the better")."""
        return self.input_bytes / max(1, self.output_bytes)

    def record_use(self, tick):
        self.use_count += 1
        self.last_used_tick = max(self.last_used_tick, tick)

    def __repr__(self):
        return (
            f"EntryStats(in={self.input_bytes}B, out={self.output_bytes}B, "
            f"time={self.producing_job_time:.1f}s, uses={self.use_count})"
        )


class MatchCounters:
    """Why matcher candidates were (not) used, for one workflow.

    ``match_candidates`` narrows the repository to entries that *could*
    match; this records what happened to each candidate the matcher then
    actually tried:

    * ``matched`` — containment held and the job was rewritten;
    * ``skipped_missing_output`` — the entry's stored file is gone from
      the DFS (evicted externally, or deleted by an operator);
    * ``skipped_no_containment`` — the candidate survived the load-index
      (or shard-merge) filter but the exact containment test failed.

    The split explains reports beyond "how many rewrites happened": a
    high ``skipped_no_containment`` count means the candidate filter is
    loose for this workload, a high ``skipped_missing_output`` count
    means the repository is stale relative to the DFS.
    """

    __slots__ = ("candidates_tried", "matched", "skipped_missing_output",
                 "skipped_no_containment")

    def __init__(self):
        self.candidates_tried = 0
        self.matched = 0
        self.skipped_missing_output = 0
        self.skipped_no_containment = 0

    @property
    def skipped(self):
        return self.skipped_missing_output + self.skipped_no_containment

    def as_dict(self):
        return {
            "candidates_tried": self.candidates_tried,
            "matched": self.matched,
            "skipped_missing_output": self.skipped_missing_output,
            "skipped_no_containment": self.skipped_no_containment,
        }

    def describe(self):
        return (
            f"{self.candidates_tried} candidate(s) tried: "
            f"{self.matched} matched, "
            f"{self.skipped_missing_output} skipped (missing output), "
            f"{self.skipped_no_containment} skipped (no containment)"
        )

    def __repr__(self):
        return f"MatchCounters({self.describe()})"


class RankingDecision:
    """One applied rewrite's savings accounting.

    ``estimated_savings`` is the :mod:`~repro.restore.ranking` score
    computed from the entry's recorded statistics (what a
    ``SavingsRanker`` ranks by); ``realized_savings`` re-evaluates the
    same formula at rewrite time against the stored file's actual size.
    The difference is the estimator's error for this decision.
    """

    __slots__ = ("job_id", "entry_id", "estimated_savings", "realized_savings")

    def __init__(self, job_id, entry_id, estimated_savings, realized_savings):
        self.job_id = job_id
        self.entry_id = entry_id
        self.estimated_savings = estimated_savings
        self.realized_savings = realized_savings

    @property
    def estimate_error(self):
        return self.estimated_savings - self.realized_savings

    def as_dict(self):
        return {
            "job_id": self.job_id,
            "entry_id": self.entry_id,
            "estimated_savings": self.estimated_savings,
            "realized_savings": self.realized_savings,
            "estimate_error": self.estimate_error,
        }

    def __repr__(self):
        return (
            f"RankingDecision({self.job_id} <- {self.entry_id}, "
            f"est={self.estimated_savings:.1f}s, "
            f"real={self.realized_savings:.1f}s)"
        )


class RankingLedger:
    """Every rewrite's estimated vs realized savings, for one workflow.

    Recorded by the manager for **every** applied rewrite, whichever
    ranker chose it — the structural default gets the same accounting,
    so switching rankers is an observable A/B, not a blind flag flip.
    """

    __slots__ = ("ranker_name", "decisions")

    def __init__(self, ranker_name="structural"):
        self.ranker_name = ranker_name
        self.decisions = []

    def record(self, job_id, entry_id, estimated_savings, realized_savings):
        decision = RankingDecision(job_id, entry_id, estimated_savings,
                                   realized_savings)
        self.decisions.append(decision)
        return decision

    def __len__(self):
        return len(self.decisions)

    @property
    def total_estimated_savings(self):
        return sum(decision.estimated_savings for decision in self.decisions)

    @property
    def total_realized_savings(self):
        return sum(decision.realized_savings for decision in self.decisions)

    @property
    def mean_absolute_error(self):
        """Mean |estimated - realized| over the workflow's rewrites —
        the estimator-error counter the ranking docs promise."""
        if not self.decisions:
            return 0.0
        return (sum(abs(decision.estimate_error)
                    for decision in self.decisions) / len(self.decisions))

    def as_dict(self):
        return {
            "ranker": self.ranker_name,
            "decisions": [decision.as_dict() for decision in self.decisions],
            "total_estimated_savings": self.total_estimated_savings,
            "total_realized_savings": self.total_realized_savings,
            "mean_absolute_error": self.mean_absolute_error,
        }

    def describe(self):
        if not self.decisions:
            return f"ranker={self.ranker_name}: no rewrites"
        return (
            f"ranker={self.ranker_name}: {len(self.decisions)} rewrite(s), "
            f"estimated {self.total_estimated_savings:.1f}s saved, "
            f"realized {self.total_realized_savings:.1f}s, "
            f"mean |error| {self.mean_absolute_error:.2f}s"
        )

    def __repr__(self):
        return f"RankingLedger({self.describe()})"


class IngestStats:
    """Counters for the async ingest front-end (one per manager).

    The submit path increments ``enqueued``/``coalesced``/``rejected``
    under the queue lock; the registrar thread owns ``applied``,
    ``batches`` and the drain-latency reservoir. No field is written by
    both sides, so the partition (plus the queue lock on the submit-side
    fields) keeps the counters exact without a dedicated stats lock.

    Drain latency — enqueue to apply, per registration record — is kept
    in a bounded reservoir: every ``_stride``-th sample is stored, and
    when the buffer reaches ``RESERVOIR_CAP`` it is decimated (every
    other sample kept, stride doubled). Deterministic, O(1) amortized,
    and the p50/p99 stay representative of the whole run rather than a
    recent window.
    """

    RESERVOIR_CAP = 8192

    __slots__ = ("enqueued", "coalesced", "rejected", "applied", "batches",
                 "max_queue_depth", "drained", "_stride", "_latencies")

    def __init__(self):
        self.enqueued = 0
        self.coalesced = 0
        self.rejected = 0
        self.applied = 0
        self.batches = 0
        self.max_queue_depth = 0
        self.drained = 0
        self._stride = 1
        self._latencies = []

    def record_depth(self, depth):
        if depth > self.max_queue_depth:
            self.max_queue_depth = depth

    def record_drain(self, latency):
        """Record one record's enqueue-to-apply latency (seconds)."""
        self.drained += 1
        if self.drained % self._stride == 0:
            self._latencies.append(latency)
            if len(self._latencies) >= self.RESERVOIR_CAP:
                self._latencies = self._latencies[::2]
                self._stride *= 2

    def _percentile(self, fraction):
        if not self._latencies:
            return None
        ordered = sorted(self._latencies)
        rank = max(0, min(len(ordered) - 1,
                          int(round(fraction * (len(ordered) - 1)))))
        return ordered[rank]

    @property
    def drain_p50(self):
        return self._percentile(0.50)

    @property
    def drain_p99(self):
        return self._percentile(0.99)

    def as_dict(self):
        return {
            "enqueued": self.enqueued,
            "coalesced": self.coalesced,
            "rejected": self.rejected,
            "applied": self.applied,
            "batches": self.batches,
            "max_queue_depth": self.max_queue_depth,
            "drain_p50": self.drain_p50,
            "drain_p99": self.drain_p99,
        }

    def describe(self):
        p50, p99 = self.drain_p50, self.drain_p99
        latency = ("no drains" if p50 is None else
                   f"drain p50 {p50 * 1e3:.2f}ms / p99 {p99 * 1e3:.2f}ms")
        return (
            f"{self.enqueued} enqueued, {self.coalesced} coalesced, "
            f"{self.rejected} rejected, {self.applied} applied in "
            f"{self.batches} batch(es), depth<= {self.max_queue_depth}, "
            f"{latency}"
        )

    def __repr__(self):
        return f"IngestStats({self.describe()})"


class ShardStats:
    """Probe/candidate/hit counters for one repository shard.

    ``occupancy`` is the shard's current entry count (maintained by the
    owning :class:`~repro.restore.sharding.ShardedRepository`), ``probes``
    counts ``match_candidates`` fan-outs that consulted this shard,
    ``candidates_returned`` the entries it contributed to merged candidate
    lists, and ``match_hits`` the rewrites that used one of its entries.

    Two replication counters ride along (zero except under a
    :class:`~repro.restore.replication.ReplicatedWorkerPool`):
    ``failovers`` counts warm promotions — a dead worker replica whose
    surviving peer took over in place — and ``replica_fanout`` the
    worker consultations served by a non-primary replica (the
    round-robin read scaling).
    """

    __slots__ = ("shard_id", "occupancy", "probes", "candidates_returned",
                 "match_hits", "failovers", "replica_fanout")

    def __init__(self, shard_id):
        self.shard_id = shard_id
        self.occupancy = 0
        self.probes = 0
        self.candidates_returned = 0
        self.match_hits = 0
        self.failovers = 0
        self.replica_fanout = 0

    def as_dict(self):
        return {
            "shard": self.shard_id,
            "occupancy": self.occupancy,
            "probes": self.probes,
            "candidates_returned": self.candidates_returned,
            "match_hits": self.match_hits,
            "failovers": self.failovers,
            "replica_fanout": self.replica_fanout,
        }

    def describe(self):
        text = (
            f"shard {self.shard_id}: {self.occupancy} entr(ies), "
            f"{self.probes} probe(s), {self.candidates_returned} candidate(s), "
            f"{self.match_hits} hit(s)"
        )
        if self.failovers or self.replica_fanout:
            text += (f", {self.failovers} failover(s), "
                     f"{self.replica_fanout} replica-fanned")
        return text

    def __repr__(self):
        return f"ShardStats({self.describe()})"
