"""Statistics attached to repository entries (paper Sections 3 and 5).

For every stored job output, the repository keeps the statistics that the
MapReduce system collected while producing it — input/output sizes, the
execution time of the producing job — plus reuse-tracking counters used by
the ordering rules and the eviction rules.
"""


class EntryStats:
    """Execution + reuse statistics for one repository entry."""

    __slots__ = (
        "input_bytes",
        "output_bytes",
        "producing_job_time",
        "map_time",
        "reduce_time",
        "created_tick",
        "last_used_tick",
        "use_count",
    )

    def __init__(self, input_bytes, output_bytes, producing_job_time,
                 map_time=0.0, reduce_time=0.0, created_tick=0):
        self.input_bytes = input_bytes
        self.output_bytes = output_bytes
        self.producing_job_time = producing_job_time
        self.map_time = map_time
        self.reduce_time = reduce_time
        self.created_tick = created_tick
        self.last_used_tick = created_tick
        self.use_count = 0

    @property
    def reduction_ratio(self):
        """Input bytes per output byte — ordering rule 2's first metric
        ("the ratio between the size of the input data and output data;
        the higher the better")."""
        return self.input_bytes / max(1, self.output_bytes)

    def record_use(self, tick):
        self.use_count += 1
        self.last_used_tick = max(self.last_used_tick, tick)

    def __repr__(self):
        return (
            f"EntryStats(in={self.input_bytes}B, out={self.output_bytes}B, "
            f"time={self.producing_job_time:.1f}s, uses={self.use_count})"
        )
