"""Plan containment matching — the core of the plan matcher & rewriter.

A repository plan *matches* an input MapReduce job if it is **contained**
in the job's physical plan (paper Section 3). Containment is built on
operator equivalence:

    two operators are equivalent iff (1) their inputs are pipelined from
    equivalent operators or the same data sets, and (2) they perform
    functions that produce the same output data.

(1) is the recursive input check; (2) is signature equality — signatures
are canonical and position-based (see :mod:`repro.physical.operators`), so
names chosen by different queries do not matter. Load signatures embed the
dataset path *and version*, which realizes "the same data sets".

Two entry points:

* :func:`find_containment` — the containment test used by ReStore proper;
  returns the repo-op -> input-op mapping on success.
* :func:`pairwise_plan_traversal` — a faithful transcription of the
  paper's Algorithm 1 (simultaneous depth-first traversal over successor
  sets). It is equivalent on the plans ReStore produces and is kept both
  as executable documentation and as a cross-check (property-tested
  against :func:`find_containment`).
"""

from repro.physical.operators import POStore


class Match:
    """A successful containment of ``entry_plan`` in an input plan."""

    __slots__ = ("mapping", "frontier")

    def __init__(self, mapping, frontier):
        #: maps id(repo op) -> input op, for every non-Store repo op
        self.mapping = mapping
        #: the input-plan operator equivalent to the repo plan's last
        #: operator before its Store — the point whose output the stored
        #: file materializes.
        self.frontier = frontier

    def matched_input_ops(self):
        return list(self.mapping.values())


def skip_splits(op):
    """Splits are transparent for equivalence (pure pass-through)."""
    while op.kind == "split":
        op = op.inputs[0]
    return op


def match_frontier(entry_plan):
    """A single-Store plan's last operator before its Store — the point
    whose output a repository entry materializes, and the root of the
    structure all matching (and fingerprinting) recurses over."""
    stores = entry_plan.stores()
    if len(stores) != 1:
        raise ValueError(f"repository plans must have exactly one Store, got {len(stores)}")
    return skip_splits(stores[0].inputs[0])


def _equivalent(repo_op, input_op, memo):
    input_op = skip_splits(input_op)
    key = (id(repo_op), id(input_op))
    cached = memo.get(key)
    if cached is not None:
        return cached
    if repo_op.signature() != input_op.signature():
        memo[key] = False
        return False
    if len(repo_op.inputs) != len(input_op.inputs):
        memo[key] = False
        return False
    result = all(
        _equivalent(repo_parent, input_parent, memo)
        for repo_parent, input_parent in zip(repo_op.inputs, input_op.inputs)
    )
    memo[key] = result
    return result


def _build_mapping(repo_frontier, input_frontier):
    mapping = {}

    def walk(repo_op, input_op):
        input_op = skip_splits(input_op)
        if id(repo_op) in mapping:
            return
        mapping[id(repo_op)] = input_op
        for repo_parent, input_parent in zip(repo_op.inputs, input_op.inputs):
            walk(repo_parent, input_parent)

    walk(repo_frontier, input_frontier)
    return mapping


def find_containment(entry_plan, input_plan):
    """Test whether ``entry_plan`` is contained in ``input_plan``.

    Returns a :class:`Match` (repo-op mapping plus the input-plan frontier
    operator) or None. Candidate frontiers are tried in topological order,
    so the result is deterministic; Store operators and bare Loads are
    never frontiers (reusing a stored output to replace a plain Load would
    be a no-op rewrite).
    """
    repo_frontier = match_frontier(entry_plan)
    memo = {}
    for candidate in input_plan.operators():
        if isinstance(candidate, POStore):
            continue
        if candidate.kind in ("load", "split"):
            continue
        if _equivalent(repo_frontier, candidate, memo):
            return Match(_build_mapping(repo_frontier, candidate), candidate)
    return None


def contains(entry_plan, input_plan):
    """Boolean form of :func:`find_containment` (used for subsumption)."""
    return find_containment(entry_plan, input_plan) is not None


# --- Algorithm 1, transcribed -------------------------------------------------


def pairwise_plan_traversal(input_plan, entry_plan):
    """The paper's Algorithm 1 as a containment predicate.

    Algorithm 1 traverses both plans simultaneously from their Load
    operators, pairing each repository operator with an equivalent input
    operator (``findEquivalentOP``), and declares a match when *all*
    repository operators have equivalents. Operator equivalence already
    recurses over inputs ("inputs pipelined from equivalent operators or
    the same data sets"), so the traversal's success criterion reduces to:
    every non-Store repository operator has an input-consistent equivalent
    somewhere downstream of a matching input Load — which is what this
    implementation checks. It is property-tested to agree with
    :func:`find_containment`.
    """
    memo = {}
    input_ops = [
        op for op in input_plan.operators() if not isinstance(op, POStore)
    ]
    for repo_op in entry_plan.operators():
        if isinstance(repo_op, POStore):
            continue  # the repo Store is the materialization point
        if repo_op.kind == "split":
            # Splits are pure pass-throughs ("Unix tee") and transparent
            # for equivalence; findEquivalentOP skips them on the input
            # side, so the traversal must not demand a literal Split
            # twin for one sitting in the repository plan either. (The
            # differential fuzz suite caught this: an entry with a Split
            # under its Store matched via find_containment — whose
            # match_frontier skips it — but failed here.)
            continue
        if not any(_equivalent(repo_op, candidate, memo) for candidate in input_ops):
            return False
    return True
