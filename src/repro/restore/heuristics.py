"""Sub-job selection heuristics (paper Section 4).

Which physical operators' outputs are worth materializing as sub-jobs:

* **Conservative (HC)** — operators known to reduce their input size:
  Project (our POForEach) and Filter. Low overhead, lower reuse benefit.
* **Aggressive (HA)** — HC plus operators known to be expensive: Join,
  Group, and CoGroup. The paper's default: highest benefit, some risk
  (e.g. its L6 stores a large Group output through few reducers).
* **No Heuristic (NH)** — materialize after *every* operator; the paper's
  upper-bound strawman: strictly more storage and overhead than HA with no
  extra benefit (Figures 13-14).
"""

_NEVER = frozenset({"load", "store", "split"})

_CONSERVATIVE = frozenset({"foreach", "filter"})
_AGGRESSIVE = _CONSERVATIVE | frozenset({"join", "group", "cogroup"})


class SubJobHeuristic:
    """Decides which operators' outputs to materialize."""

    name = "abstract"

    def should_materialize(self, op):
        raise NotImplementedError

    def __repr__(self):
        return f"<{type(self).__name__}>"


class ConservativeHeuristic(SubJobHeuristic):
    """Materialize after input-reducing operators (Project, Filter)."""

    name = "conservative"

    def should_materialize(self, op):
        return op.kind in _CONSERVATIVE


class AggressiveHeuristic(SubJobHeuristic):
    """Materialize after input-reducing AND expensive operators."""

    name = "aggressive"

    def should_materialize(self, op):
        return op.kind in _AGGRESSIVE


class NoHeuristic(SubJobHeuristic):
    """Materialize after every physical operator (the NH strawman)."""

    name = "no-heuristic"

    def should_materialize(self, op):
        return op.kind not in _NEVER
