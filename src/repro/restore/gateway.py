"""Worker-side durable writes through a front-end DFS gateway.

The simulated :class:`~repro.dfs.filesystem.DistributedFileSystem` is an
in-process object: a forked shard worker that wrote to its inherited
*copy* would mutate private memory the front-end (and the next
``load_repository``) never sees. Real deployments do not have this
problem — each worker would simply hold its own HDFS client — so the
gateway reproduces exactly that shape with the pieces this repo has:

* the front-end runs one **pump thread** draining write requests from a
  shared multiprocessing queue against the real DFS;
* each worker holds a picklable :class:`DfsClient` — two queues and an
  id, nothing else, safe to inherit at fork — whose calls block until
  the pump acks, so a worker's durable-completion ack to the
  coordinator happens-after its write is actually durable.

The client surface is deliberately minimal: segment tail appends and
whole-section rewrites, the two files a worker owns under worker-owned
checkpointing (see ``docs/PERSISTENCE.md`` §6). There is **no
manifest-swap operation** — the manifest is the coordination point and
stays front-end-only; the statlint ``crash-ordering`` rule enforces the
same split statically (its R5: worker modules never write the
manifest).

Write serialization comes from the checkpoint protocol, not from DFS
locks: the coordinator holds the :class:`~repro.restore.wal.RepositoryLog`
mutex while it waits for worker acks, and a worker only acks after its
gateway call returned — so at most one side mutates the DFS at a time.
"""

import threading

from repro.common.errors import RepositoryError


class GatewayError(RepositoryError):
    """A gateway write failed front-end-side (raised in the worker; the
    worker's error ack makes the coordinator fall back to writing the
    file itself)."""


class DfsClient:
    """The worker-side handle: enqueue one write, block until the pump
    acks it.

    Deliberately free of any front-end state — no DFS reference, no
    locks, no threads — so it is safe to reach from a worker-process
    entrypoint (the statlint ``fork-safety`` rule checks exactly that:
    ``dfs`` handles are front-end-only attributes; workers write through
    a client).
    """

    def __init__(self, client_id, requests, replies):
        self._client_id = client_id
        self._requests = requests
        self._replies = replies

    def _call(self, method, target, lines):
        self._requests.put((self._client_id, method, target, lines))
        status, detail = self._replies.get()
        if status != "ok":
            raise GatewayError(detail)
        return detail

    def append_lines(self, target, lines):
        """Append ``lines`` to ``target`` — the worker's own segment
        tail append; blocks until durable front-end-side."""
        return self._call("append_lines", target, list(lines))

    def write_section(self, target, lines):
        """Rewrite ``target`` whole — a fresh generation-named section
        file, never an in-place overwrite of referenced state and never
        the manifest (the client has no such operation)."""
        return self._call("write_section", target, list(lines))


class DfsGateway:
    """The front-end side: mints one :class:`DfsClient` per worker and
    pumps their requests against the real DFS."""

    #: Locking contract (statlint ``lock-discipline``): clients are
    #: minted from whichever thread spawns a worker (probe path, ingest
    #: registrar) while close() may run elsewhere and the pump thread
    #: routes replies — the registry and the pump-thread slot stay under
    #: one lock. The pump's DFS writes themselves are serialized by the
    #: checkpoint protocol, not here (see the module docstring).
    GUARDED_BY = {"_clients": "_lock", "_next_client": "_lock",
                  "_pump_thread": "_lock"}

    def __init__(self, dfs, context):
        self.dfs = dfs
        self._context = context
        self._requests = context.Queue()
        self._lock = threading.Lock()
        self._clients = {}        # client id -> its reply queue
        self._next_client = 0
        self._pump_thread = None
        #: requests served (observability; pump-thread-private counter,
        #: read racily by describe()/tests — monotonic, so a stale read
        #: only undercounts)
        self.writes = 0

    def client(self):
        """Mint one :class:`DfsClient`. Call **before** forking the
        worker that will hold it: multiprocessing queues travel by
        inheritance, not pickling."""
        with self._lock:
            client_id = self._next_client
            self._next_client += 1
            replies = self._context.Queue()
            self._clients[client_id] = replies
            if self._pump_thread is None:
                self._pump_thread = threading.Thread(
                    target=self._pump, name="dfs-gateway", daemon=True)
                self._pump_thread.start()
        return DfsClient(client_id, self._requests, replies)

    def _serve(self, method, target, lines):
        if method == "append_lines":
            self.dfs.append_lines(target, lines)
        elif method == "write_section":
            # Sections are generation-named immutable files: overwrite
            # only ever re-lands identical bytes after a crashed ack
            # (the coordinator's idempotent fallback), never replaces
            # referenced content.
            self.dfs.write_lines(target, lines, overwrite=True)
        else:
            raise RepositoryError(f"unknown gateway operation {method!r}")

    def _pump(self):
        while True:
            request = self._requests.get()
            if request is None:
                return
            client_id, method, target, lines = request
            try:
                self._serve(method, target, lines)
                reply = ("ok", None)
            except Exception as error:
                # Surfaced, not swallowed: the error travels back to the
                # waiting worker as a GatewayError; the pump itself must
                # survive one bad request to serve the other workers.
                reply = ("error", f"{type(error).__name__}: {error}")
            self.writes += 1
            with self._lock:
                replies = self._clients.get(client_id)
            if replies is not None:
                replies.put(reply)

    def close(self):
        """Stop the pump and forget the clients (idempotent). A worker
        calling through a closed gateway blocks forever — workers are
        daemons torn down with their pool, which closes the gateway
        last."""
        with self._lock:
            thread = self._pump_thread
            self._pump_thread = None
            self._clients = {}
        if thread is not None:
            self._requests.put(None)
            thread.join(timeout=2.0)

    def describe(self):
        with self._lock:
            clients = len(self._clients)
            live = self._pump_thread is not None
        return (f"DfsGateway: {clients} client(s), pump "
                f"{'live' if live else 'stopped'}, {self.writes} "
                f"write(s) served")

    def __repr__(self):
        return f"<{self.describe()}>"
