"""The sub-job enumerator: inject Split + Store to materialize sub-jobs.

For every operator the heuristic selects, the enumerator inserts a Split
(the "Unix tee", paper Section 4) whose first branch continues to the
original consumers and whose second branch feeds a new Store writing the
operator's output to a ReStore-owned file — exactly the paper's Figure 8.

Each candidate is later registered as a full, independent MapReduce job
plan (Loads → ... → P → Store), indistinguishable from whole jobs in the
repository.
"""

from repro.physical.operators import POSplit, POStore


class SubJobCandidate:
    """A materialized sub-job awaiting registration after execution."""

    __slots__ = ("job_id", "operator", "store", "path")

    def __init__(self, job_id, operator, store, path):
        self.job_id = job_id
        #: the operator (inside the job plan) whose output is materialized
        self.operator = operator
        self.store = store
        self.path = path

    def __repr__(self):
        return f"SubJobCandidate({self.job_id}, {self.operator.kind} -> {self.path})"


def enumerate_and_inject(job, heuristic, allocate_path):
    """Inject Split+Store after the operators ``heuristic`` selects.

    ``allocate_path()`` hands out fresh DFS paths in ReStore's materialized
    area. Returns the list of :class:`SubJobCandidate`.

    Operators are skipped when their output is already stored: the ones
    directly feeding a Store (the paper: "If P ... is a Store, the output
    of J_P would already be stored"), plus Loads/Stores/Splits themselves
    and anything ReStore previously injected.
    """
    candidates = []
    for op in list(job.plan.operators()):
        if op.kind in ("load", "store", "split") or op.injected:
            continue
        if not heuristic.should_materialize(op):
            continue
        consumers = job.plan.successors_of(op)
        if any(isinstance(consumer, POStore) for consumer in consumers):
            # Output is already materialized by the job's own Store; the
            # whole-job registration covers it.
            continue
        if any(isinstance(consumer, POSplit) and consumer.injected
               for consumer in consumers):
            # A previous enumeration already materializes this operator.
            continue
        split = POSplit(op, alias=op.alias)
        split.injected = True
        split.stage = op.stage
        store = POStore(split, allocate_path(), alias=op.alias)
        store.injected = True
        store.stage = op.stage
        for consumer in consumers:
            job.plan.replace_input(consumer, op, split)
        job.plan.add_sink(store)
        candidates.append(SubJobCandidate(job.job_id, op, store, store.path))
    return candidates
