"""In-memory shard replication: warm failover and read fan-out.

:class:`~repro.restore.service.ShardWorkerPool` (PR 6) runs one worker
process per partition. That bounds two things badly:

* **recovery latency** — a crashed worker is re-seeded from the durable
  partition snapshot (or the front-end's members), so recovery waits on
  a disk replay exactly when the shard is hottest;
* **read throughput** — every probe for a hot shard lands on the same
  single process, whatever the core count.

:class:`ReplicatedWorkerPool` fixes both by keeping ``k >= 2`` peer
worker processes per partition, each holding a bit-identical
:class:`~repro.restore.service.ShardWorkerState` replica:

* the shard's mutation stream — the same per-shard buffers the base
  pool fills from the repository's change events — is **flushed to
  every replica**, so the replicas stay bit-identical to the primary by
  construction (same ``apply`` batches, same order);
* a probe is answered by **one** replica, chosen round-robin, so a hot
  shard's read load spreads across its replica set; the batched probe
  path goes further and splits a shard's probe batch *across* the
  replicas, which filter their chunks concurrently;
* when the chosen replica turns out dead (the liveness/timeout path in
  ``_WorkerHandle``), the pool **fails over warm**: a surviving peer is
  promoted in place and answers the retried probe — no durable replay,
  no respawn on the failover path. The dead slot is noted and a
  replacement replica is **backfilled in the background** (on the next
  pool entry for that shard, after the mutation buffer has been
  flushed, so the seed — the durable partition snapshot when a
  :class:`~repro.restore.wal.RepositoryLog` is attached, the front-end
  members otherwise — equals the survivors' state exactly);
* only when **every** replica of a shard is gone does the pool fall
  back to the base pool's cold path: respawn the whole set and re-seed
  it from the durable partition snapshot (``recoveries`` counts these,
  exactly as in the base pool; ``failovers`` counts warm promotions).

The correctness contract is the repo's usual one, extended to a
concurrent, fault-injected setting: every replica's canonical state
image (:meth:`replica_states`) is identical across the set under
randomized mutation streams *including mid-stream kills*, and the
merged candidate sequences the front-end produces are bit-identical to
the serial executor's throughout — the property suite drives both with
``tests/faultinject.FaultSchedule``.

Enable it with ``ShardedRepository(executor="processes", replicas=k)``
or ``RepositoryService(replicas=k)``; the per-shard
:class:`~repro.restore.stats.ShardStats` grow ``failovers`` and
``replica_fanout`` counters so the promotion and fan-out activity is
visible in ``shard_report()``.
"""

from repro.common.errors import RepositoryError
from repro.restore.service import ShardWorkerPool, WorkerCrashed


class ReplicatedWorkerPool(ShardWorkerPool):
    """A :class:`ShardWorkerPool` holding ``k >= 2`` replicas per shard.

    Drop-in for the base pool everywhere the repository front-end is
    concerned: same ``bind``/``record_*``/``match_probe*`` surface, same
    buffered hand-off, same bit-identical merged candidates. What
    changes is the worker lifecycle behind those calls — replica sets
    instead of single workers, warm promotion instead of respawn-and-
    replay on the common crash path.
    """

    name = "replicated-processes"

    def __init__(self, max_workers=None, replicas=2, response_timeout=None):
        if replicas < 2:
            raise ValueError(
                f"ReplicatedWorkerPool needs replicas >= 2 (use "
                f"executor='processes' without replicas for a single "
                f"worker per shard), got {replicas}")
        super().__init__(max_workers, response_timeout=response_timeout)
        self.replicas = replicas
        self._replica_sets = {}   # shard_id -> [live _WorkerHandle, ...]
        self._cursors = {}        # shard_id -> round-robin probe pointer
        self._spawn_seq = {}      # shard_id -> last replica_seq handed out
        #: shards that lost a replica and owe a background backfill;
        #: executed on the *next* pool entry for the shard — never on
        #: the failover path itself, which must not touch durable state
        self._backfill_due = set()
        self.failovers = 0        # warm promotions (dead replica, live peer)
        self.backfills = 0        # replacement replicas seeded

    # Replica lifecycle ------------------------------------------------------

    def _spawn(self, shard_id):
        handle = super()._spawn(shard_id)
        seq = self._spawn_seq.get(shard_id, -1) + 1
        self._spawn_seq[shard_id] = seq
        handle.replica_seq = seq
        return handle

    def _shard_stats(self, shard_id):
        """The front-end's ShardStats for ``shard_id`` (None when the
        repository does not expose per-shard stats)."""
        stats_of = getattr(self._repository, "shard_stats", None)
        return stats_of(shard_id) if callable(stats_of) else None

    def _note_failovers(self, shard_id, count):
        """Bookkeeping for ``count`` warm promotions on ``shard_id``:
        surviving peers keep answering, replacements are owed."""
        self.failovers += count
        stats = self._shard_stats(shard_id)
        if stats is not None:
            stats.failovers += count
        self._backfill_due.add(shard_id)

    def _prune_dead(self, shard_id):
        """Drop dead replicas from the set. With survivors this *is*
        the warm failover — the promoted peers already hold the full
        mutation stream; with none it degrades to the cold rebuild."""
        replicas = self._replica_sets[shard_id]
        live = [handle for handle in replicas if handle.alive()]
        dead = [handle for handle in replicas if not handle.alive()]
        if not dead:
            return
        for handle in dead:
            handle.kill()   # reap + close the orphaned queues
        if not live:
            self._cold_rebuild(shard_id)
            return
        self._replica_sets[shard_id] = live
        self._note_failovers(shard_id, len(dead))

    def _cold_rebuild(self, shard_id):
        """Every replica of ``shard_id`` is gone: the base pool's cold
        fallback, k-wide — respawn the whole set and re-seed each
        replica from the durable partition snapshot (or the front-end
        members). The shard's buffer is dropped: the full re-seed
        already reflects every recorded mutation."""
        self.recoveries += 1
        for handle in self._replica_sets.get(shard_id, ()):
            handle.kill()
        self._buffers[shard_id] = []
        self._backfill_due.discard(shard_id)
        self._cursors[shard_id] = 0
        replicas = [self._spawn(shard_id) for _ in range(self.replicas)]
        self._replica_sets[shard_id] = replicas
        mutations = self._replay_mutations(shard_id)
        if mutations:
            for handle in replicas:
                handle.send(("apply", mutations))
        return replicas

    def _backfill(self, shard_id):
        """Seed replacement replicas up to ``k``. Runs only after the
        shard's buffer has been flushed to the survivors, so the replay
        seed equals their state — the replacement joins bit-identical."""
        self._backfill_due.discard(shard_id)
        replicas = self._replica_sets[shard_id]
        missing = self.replicas - len(replicas)
        if missing <= 0:
            return
        mutations = self._replay_mutations(shard_id)
        for _ in range(missing):
            handle = self._spawn(shard_id)
            replicas.append(handle)
            if mutations:
                handle.send(("apply", mutations))
            self.backfills += 1

    def _flush_to_replicas(self, shard_id):
        """Ship the shard's buffered mutations to every live replica —
        the one write amplification replication costs. A replica that
        died unnoticed is pruned here (its peers got the batch)."""
        mutations = self._buffers.get(shard_id)
        if not mutations:
            return
        survivors = []
        casualties = 0
        for handle in self._replica_sets[shard_id]:
            try:
                handle.send(("apply", mutations))
                survivors.append(handle)
            except WorkerCrashed:
                handle.kill()
                casualties += 1
        if not survivors:
            self._cold_rebuild(shard_id)
            return
        if casualties:
            self._replica_sets[shard_id] = survivors
            self._note_failovers(shard_id, casualties)
        self._buffers[shard_id] = []

    def flush_shards(self, shard_ids=None):
        """Ship buffered mutations to every live replica of the listed
        shards now (all buffered shards when ``shard_ids`` is None);
        returns the number of mutations shipped (pre-fan-out — the same
        count the base pool would report).

        Like the base pool's flush, shards whose replica set has never
        been spawned are skipped — spawning belongs to the probe path —
        but an already-live set gets the full replicated treatment via
        :meth:`_flush_to_replicas`: casualties pruned and noted as
        failovers, whole-set loss falling through to the cold rebuild.
        """
        if self._closed:
            return 0
        if shard_ids is None:
            shard_ids = [shard_id for shard_id, batch in self._buffers.items()
                         if batch]
        shipped = 0
        for shard_id in shard_ids:
            mutations = self._buffers.get(shard_id)
            if not mutations or shard_id not in self._replica_sets:
                continue
            pending = len(mutations)
            self._flush_to_replicas(shard_id)
            if not self._buffers.get(shard_id):
                shipped += pending
        return shipped

    def _ready_replicas(self, shard_id):
        """The shard's live replica set, buffers flushed and any *owed*
        backfill executed. A crash detected during this very call only
        schedules its backfill — the failover path stays free of
        durable reads; the replacement is seeded on the next entry."""
        if self._closed:
            raise RepositoryError("this ReplicatedWorkerPool is closed")
        backfill_owed = shard_id in self._backfill_due
        if shard_id not in self._replica_sets:
            self._replica_sets[shard_id] = [
                self._spawn(shard_id) for _ in range(self.replicas)]
        else:
            self._prune_dead(shard_id)
        self._flush_to_replicas(shard_id)
        if backfill_owed and shard_id in self._backfill_due:
            self._backfill(shard_id)
        return self._replica_sets[shard_id]

    def _next_replica(self, shard_id, replicas):
        """Round-robin read fan-out: rotate the shard's probe cursor
        across its replica set, crediting non-primary consultations to
        the front-end's ``replica_fanout`` counter."""
        cursor = self._cursors.get(shard_id, 0) % len(replicas)
        self._cursors[shard_id] = (cursor + 1) % len(replicas)
        if cursor:
            stats = self._shard_stats(shard_id)
            if stats is not None:
                stats.replica_fanout += 1
        return replicas[cursor]

    # Worker-owned durability ------------------------------------------------

    def _durable_worker(self, shard_id):
        """The shard's durable owner: replica index 0. Replicas must
        agree on who appends — exactly one does — so ownership is a
        position, not a process: pruning a dead slot-0 replica
        *promotes* the next survivor to durable ownership along with
        its probe duties. The whole set is fed the mutation stream
        first (peers must stay bit-identical before the owner
        checkpoints their shared state). Never spawns: a shard whose
        set was never started checkpoints front-end-side."""
        if self._closed or shard_id not in self._replica_sets:
            return None
        self._prune_dead(shard_id)
        self._flush_to_replicas(shard_id)
        replicas = self._replica_sets.get(shard_id) or ()
        primary = replicas[0] if replicas else None
        if (primary is None or not primary.alive()
                or not primary.durable_capable):
            return None
        return primary

    def flush_durable(self, shard_id, segment, lines):
        """Replicated durable flush: every live replica got the
        mutation batch (via :meth:`_durable_worker`'s set-wide flush),
        but only the durable owner carries the segment payload and acks
        the append. An owner that dies with the append in flight is
        pruned — promoting the next survivor — *before* the
        :class:`WorkerCrashed` propagates, so the caller's
        reconcile-then-retry lands on the new owner; re-appending what
        the dead owner already flushed is prevented by the caller's
        watermark dedup, which is what the failover double-append
        regression test pins down."""
        primary = self._durable_worker(shard_id)
        if primary is None:
            return False
        payload = {"segment": segment, "lines": list(lines)}
        try:
            primary.send(("apply", self._buffers.get(shard_id, []),
                          payload))
            answer = primary.receive()
        except WorkerCrashed:
            self._prune_dead(shard_id)
            raise
        return bool(isinstance(answer, dict)
                    and answer.get("appended") is not None)

    # Base-pool integration points -------------------------------------------

    def _ready_worker(self, shard_id):
        return self._next_replica(shard_id, self._ready_replicas(shard_id))

    def _recover(self, shard_id):
        """A dispatched replica died mid-conversation: promote a
        surviving peer in place (it holds the identical state and every
        flushed mutation — probes are read-only, so the retry is safe)
        and hand it back. No respawn, no durable replay: that is the
        point of keeping warm replicas. Only an empty set falls through
        to :meth:`_cold_rebuild` (via ``_prune_dead``)."""
        self._prune_dead(shard_id)
        return self._next_replica(shard_id, self._replica_sets[shard_id])

    def worker_size(self, shard_id):
        """Entry count held by the shard's primary replica (every peer
        answers identically; asking one keeps the fan-out counters a
        pure probe metric)."""
        try:
            handle = self._ready_replicas(shard_id)[0]
            handle.send(("size",))
            return handle.receive()
        except WorkerCrashed:
            self._prune_dead(shard_id)
            handle = self._ready_replicas(shard_id)[0]
            handle.send(("size",))
            return handle.receive()

    def replica_states(self, shard_id):
        """Every replica's canonical state image (sorted ``(key, entry
        json)`` pairs) — the bit-identity witness the property suite
        asserts on. Flushes first, so the images reflect every recorded
        mutation."""
        replicas = self._ready_replicas(shard_id)
        for handle in replicas:
            handle.send(("dump",))
        return [handle.receive() for handle in replicas]

    def replica_count(self, shard_id):
        """Live replicas currently serving ``shard_id`` (0 before first
        use; dips below ``k`` between a crash and its backfill)."""
        return len(self._replica_sets.get(shard_id, ()))

    # Probe fan-out ----------------------------------------------------------

    def match_probe_batch(self, probes):
        """The batched probe path, split across replicas: each consulted
        shard's probe list is dealt round-robin into one chunk per live
        replica, the chunks dispatched before any answer is collected —
        a hot shard's batch is filtered by its whole replica set
        concurrently instead of queueing on one process. Answers carry
        their probe ids, so collection order (and crash-retry
        duplication on a promoted peer) cannot misfile a result."""
        per_shard = {}
        for probe_id, shard_ids, job_loads in probes:
            for shard_id in shard_ids:
                per_shard.setdefault(shard_id, []).append(
                    (probe_id, job_loads))
        dispatched = []
        for shard_id in sorted(per_shard):
            shard_probes = per_shard[shard_id]
            replicas = self._ready_replicas(shard_id)
            fan = min(len(replicas), len(shard_probes))
            for offset in range(fan):
                chunk = shard_probes[offset::fan]
                if offset:
                    stats = self._shard_stats(shard_id)
                    if stats is not None:
                        stats.replica_fanout += 1
                handle = replicas[offset]
                try:
                    handle.send(("probe_batch", chunk))
                except WorkerCrashed:
                    handle = self._recover(shard_id)
                    handle.send(("probe_batch", chunk))
                dispatched.append((shard_id, handle, chunk))
        results = {}
        for shard_id, handle, chunk in dispatched:
            try:
                answer = handle.receive()
            except WorkerCrashed:
                fresh = self._recover(shard_id)
                fresh.send(("probe_batch", chunk))
                answer = fresh.receive()
            for probe_id, keys in answer:
                results.setdefault(probe_id, {})[shard_id] = keys
        return results

    # Lifecycle --------------------------------------------------------------

    def close(self):
        if self._closed:
            return
        self._closed = True
        for replicas in self._replica_sets.values():
            for handle in replicas:
                handle.stop()
        self._replica_sets = {}
        self._buffers = {}
        self._backfill_due = set()
        if self._gateway is not None:
            self._gateway.close()
            self._gateway = None

    def describe(self):
        live = sum(1 for replicas in self._replica_sets.values()
                   for handle in replicas if handle.alive())
        total = sum(len(replicas)
                    for replicas in self._replica_sets.values())
        return (f"ReplicatedWorkerPool[k={self.replicas}]: {live}/{total} "
                f"replica worker(s) live across {len(self._replica_sets)} "
                f"shard(s), {self.buffered_mutations()} buffered "
                f"mutation(s), {self.failovers} failover(s), "
                f"{self.backfills} backfill(s), {self.recoveries} cold "
                f"recover(ies)")
