"""The enumerated sub-job selector: keep/evict decisions (paper Section 5).

A job output earns its place in the repository when (1) reusing it can
reduce execution time and (2) it will actually be reused. The paper's
rules:

1. keep only if the output is smaller than the input (reduces Tload);
2. keep only if Equation 1 predicts a time reduction (the producing job
   costs more than loading its output);
3. evict when not reused within a window of time;
4. evict when an input dataset was deleted or modified.

The paper's own experiments store everything (:class:`KeepEverythingPolicy`,
the default); :class:`HeuristicRetentionPolicy` implements Rules 1-4.
"""


class RetentionPolicy:
    """Admission (Rules 1-2) and eviction (Rules 3-4) decisions."""

    def should_keep(self, entry, cost_model):
        """Admission check for a freshly produced candidate entry."""
        raise NotImplementedError

    def sweep(self, repository, dfs, clock):
        """Evict stale entries; returns the list of evicted entries."""
        raise NotImplementedError


class KeepEverythingPolicy(RetentionPolicy):
    """Store all candidates, evict nothing (the paper's experimental mode,
    Section 5: "we store the outputs of all candidate jobs and sub-jobs")."""

    def should_keep(self, entry, cost_model):
        return True

    def sweep(self, repository, dfs, clock):
        return []


class HeuristicRetentionPolicy(RetentionPolicy):
    """The paper's four rules.

    ``window_ticks`` is Rule 3's reuse window measured on ReStore's
    logical clock (one tick per submitted workflow).
    """

    def __init__(self, window_ticks=10, require_reduction=True,
                 require_benefit=True):
        self.window_ticks = window_ticks
        self.require_reduction = require_reduction
        self.require_benefit = require_benefit

    # Admission ----------------------------------------------------------

    def should_keep(self, entry, cost_model):
        stats = entry.stats
        if self.require_reduction and stats.output_bytes >= stats.input_bytes:
            return False  # Rule 1
        if self.require_benefit:
            reload_time = cost_model.estimate_load_time(stats.output_bytes)
            if reload_time >= stats.producing_job_time:
                return False  # Rule 2 (Equation 1 predicts no reduction)
        return True

    # Eviction -------------------------------------------------------------

    def sweep(self, repository, dfs, clock):
        """Batched eviction to a fixpoint.

        The seed restarted a full scan after every single removal
        (evicting an entry deletes its owned file, which can invalidate
        entries that read it — Rule 4 cascades). Both eviction conditions
        are monotone in the set of deleted files, so the fixpoint can be
        reached in rounds instead: evict *everything* currently evictable
        in one pass over the scan order, then re-check only the entries
        whose ``input_versions`` mention a just-deleted path — exactly
        the set whose Rule 4 check can have changed (Rule 3 expiry is
        time-invariant within one sweep, so round 1 settled it for
        everyone). The evicted *set* is identical to the seed's
        one-at-a-time sweep; rounds are bounded by the depth of the
        stored-output dependency chains, not the entry count.
        """
        evicted = []
        candidates = list(repository.scan())
        while candidates:
            doomed = [entry for entry in candidates
                      if self._expired(entry, clock)
                      or self._inputs_gone(entry, dfs)]
            if not doomed:
                break
            deleted_paths = set()
            for entry in doomed:
                repository.remove(entry, dfs)
                evicted.append(entry)
                if entry.owns_file:
                    deleted_paths.add(entry.output_path)
            if not deleted_paths:
                break  # nothing cascaded: no other entry can newly expire
            candidates = [entry for entry in repository.scan()
                          if any(path in entry.input_versions
                                 for path in deleted_paths)]
        return evicted

    def _expired(self, entry, clock):
        last_activity = max(entry.stats.last_used_tick, entry.stats.created_tick)
        return clock.now() - last_activity > self.window_ticks  # Rule 3

    def _inputs_gone(self, entry, dfs):
        for path, version in entry.input_versions.items():
            if not dfs.exists(path) or dfs.status(path).version != version:
                return True  # Rule 4
        return False
