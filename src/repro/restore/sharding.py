"""A sharded ReStore repository: partitioned matching, global semantics.

The indexed :class:`~repro.restore.repository.Repository` (PR 1) made
each lookup cheap, but the repository is still one object serving every
probe serially. This module partitions the entry set across N **shards**
so that a match probe only does work proportional to the shards that
could possibly answer it, and so independent shard probes can run on a
pluggable executor (serially by default, or on a thread pool).

Sharding layout
---------------

* Every entry is owned by **exactly one** shard, chosen by a stable hash
  (CRC-32, process-independent — persistence and restarts reproduce the
  layout) of the entry's *representative leaf-load key*: the minimum
  ``(path, version)`` pair of its load set. Entries whose loads cannot
  be keyed (or that read nothing) live in a dedicated **catch-all**
  partition consulted by every probe, because no load filter can rule
  them out.

* Containment requires an entry's load set to be a *subset* of the
  job's (see :mod:`repro.restore.index`), so an entry that can match a
  job has its representative key among the job's load keys. A probe for
  a job touching ``k`` load keys therefore fans out to **at most k
  shards** (plus the catch-all) and provably sees every possible match.

* The **canonical-fingerprint dict** is kept globally, not per shard: it
  is the cross-shard dedup channel that keeps ``find_equivalent`` O(1)
  for the whole repository and guarantees an equivalent computation is
  never stored twice, whichever shard would own the duplicate.

* Each shard filters only its own entries (~n/N of the repository) and
  the fan-out merges the per-shard candidates **back into the paper's
  global priority order** (Section 3's subsumption-then-metrics order)
  before the matcher runs — so the first match is the same entry the
  unsharded repository's sequential scan would have chosen, bit for bit.

:class:`ShardedRepository` subclasses :class:`Repository` for the global
view: scan order, ``find_equivalent``, insert/remove bookkeeping, and the
subsumption machinery are shared code, which is what makes the
observational-equivalence property ("sharding changes no decision")
testable and true by construction. The shards add the partitioned probe
path and per-shard statistics; the property suite drives
``ShardedRepository(n ∈ {1, 2, 8})`` in lock-step against the unsharded
and the seed linear-scan repositories.
"""

import zlib

from repro.common.errors import RepositoryError
from repro.restore.index import LoadIndex, leaf_loads
from repro.restore.repository import Repository
from repro.restore.stats import ShardStats

#: shard id of the catch-all partition in reports and persistence manifests
CATCHALL_SHARD = -1


class SerialExecutor:
    """Run shard probes inline, one after the other (the default).

    Serial probing already benefits from sharding: each probe only
    touches the shards owning the job's load keys, so the filtered
    entry count drops from n to ~k·n/N.
    """

    name = "serial"

    def map(self, fn, items):
        return [fn(item) for item in items]

    def close(self):
        pass


class ThreadPoolProbeExecutor:
    """Run shard probes on a shared ``concurrent.futures`` thread pool.

    The pool is created lazily on first use and reused across probes;
    :meth:`close` shuts it down. Useful when probes overlap DFS or other
    I/O, and the stepping stone to a multi-process shard service (each
    shard is already an isolated object with its own index).
    """

    name = "threads"

    def __init__(self, max_workers=None):
        self._max_workers = max_workers
        self._pool = None

    def map(self, fn, items):
        if len(items) <= 1:  # nothing to overlap; skip pool dispatch
            return [fn(item) for item in items]
        if self._pool is None:
            from concurrent.futures import ThreadPoolExecutor
            self._pool = ThreadPoolExecutor(max_workers=self._max_workers)
        return list(self._pool.map(fn, items))

    def close(self):
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None


def _resolve_executor(executor, max_workers, replicas=1,
                      response_timeout=None):
    if replicas < 1:
        raise ValueError(f"replicas must be >= 1, got {replicas}")
    if replicas > 1 and executor != "processes":
        raise ValueError(
            f"replicas={replicas} needs executor='processes' (replicas "
            f"are worker processes), got executor={executor!r}")
    if executor == "serial":
        return SerialExecutor()
    if executor == "threads":
        return ThreadPoolProbeExecutor(max_workers)
    if executor == "processes":
        # Imported lazily: the service module imports persistence (for
        # the entry wire format), which imports this module's shard
        # constants — resolving at call time breaks the cycle.
        if replicas > 1:
            from repro.restore.replication import ReplicatedWorkerPool
            return ReplicatedWorkerPool(max_workers, replicas=replicas,
                                        response_timeout=response_timeout)
        from repro.restore.service import ShardWorkerPool
        return ShardWorkerPool(max_workers,
                               response_timeout=response_timeout)
    if hasattr(executor, "map") or getattr(executor, "routes_probes", False):
        return executor
    raise ValueError(
        f"executor must be 'serial', 'threads', 'processes', or an "
        f"object with a .map(fn, items) method, got {executor!r}"
    )


def shard_index_for_key(load_key, num_shards):
    """Stable shard index for one ``(path, version)`` leaf-load key.

    CRC-32 of ``"{path}@v{version}"`` — deterministic across processes
    (unlike the salted builtin ``hash``), so a persisted repository
    reloads into the same layout it was saved from.
    """
    path, version = load_key
    return zlib.crc32(f"{path}@v{version}".encode("utf-8")) % num_shards


class RepositoryShard:
    """One partition of a :class:`ShardedRepository`.

    Holds its subset of entries (insertion-ordered) plus a private
    :class:`~repro.restore.index.LoadIndex` over just those entries, and
    answers ``probe(job_loads)`` with the local entries whose load sets
    the job cannot rule out — the per-shard half of ``match_candidates``.
    """

    __slots__ = ("shard_id", "stats", "_entries", "_load_index")

    def __init__(self, shard_id):
        self.shard_id = shard_id
        self.stats = ShardStats(shard_id)
        self._entries = {}            # entry_id -> entry, insertion order
        self._load_index = LoadIndex()

    def __len__(self):
        return len(self._entries)

    def __iter__(self):
        return iter(self._entries.values())

    def add(self, entry, entry_loads):
        self._entries[entry.entry_id] = entry
        self._load_index.add(entry, entry_loads)
        self.stats.occupancy = len(self._entries)

    def discard(self, entry):
        self._entries.pop(entry.entry_id, None)
        self._load_index.discard(entry)
        self.stats.occupancy = len(self._entries)

    def probe(self, job_loads):
        """Local candidates for a job reading ``job_loads`` (unordered:
        the owning repository merges shard results into the global
        priority order).

        Cost is O(local entries) — the sharded analogue of the unsharded
        repository's full-scan filter, deliberately so: a shard is
        modeled as an independent service scanning *its own slice*,
        which is the unit of work that sharding divides (probe cost
        n → n/N per shard, the scaling the ablation benchmark measures)
        and that a multi-process shard service would distribute. An
        id→entry lookup over ``candidate_ids`` would be O(candidates)
        here, but only by leaning on the in-process dict this class
        exists to decouple from.
        """
        self.stats.probes += 1
        candidate_ids = self._load_index.candidate_ids(job_loads)
        if not candidate_ids:
            return ()
        result = [entry for entry in self._entries.values()
                  if entry.entry_id in candidate_ids]
        self.stats.candidates_returned += len(result)
        return result


class ShardedRepository(Repository):
    """A :class:`Repository` whose entries are partitioned into shards.

    Parameters:

    * ``num_shards`` — number of hash partitions (≥ 1);
    * ``executor`` — how shard probes run: ``"serial"`` (default),
      ``"threads"`` (a shared ``concurrent.futures`` pool),
      ``"processes"`` (worker processes behind the routing front-end),
      or any object with a ``.map(fn, items)`` method;
    * ``max_workers`` — thread-pool size when ``executor="threads"``;
    * ``replicas`` — with ``executor="processes"``, serve each partition
      from ``k ≥ 2`` warm worker replicas (crash failover without
      durable replay, probes fanned out round-robin — see
      :mod:`repro.restore.replication`); the default 1 keeps the
      single-worker pool;
    * ``response_timeout`` — seconds one worker response wait may stay
      silent before the worker is declared crashed (defaults to the
      service module's 60 s ceiling).

    All repository semantics are **identical** to the unsharded
    :class:`Repository`: same scan order (the paper Section 3 priority
    order over the global entry set), same ``find_equivalent`` answers
    (the fingerprint dict is global — the cross-shard dedup channel),
    same ``match_candidates`` sequences (per-shard candidates are merged
    back into global scan order). What changes is the *cost*: a probe
    touches only the shards owning the job's leaf-load keys.
    """

    def __init__(self, num_shards=4, executor="serial", max_workers=None,
                 replicas=1, response_timeout=None):
        if num_shards < 1:
            raise ValueError(f"num_shards must be >= 1, got {num_shards}")
        super().__init__()
        self.num_shards = num_shards
        self.replicas = replicas
        self._shards = [RepositoryShard(index) for index in range(num_shards)]
        self._catchall = RepositoryShard(CATCHALL_SHARD)
        self._shard_of = {}           # entry_id -> owning RepositoryShard
        self._executor = _resolve_executor(executor, max_workers, replicas,
                                           response_timeout)
        # A routing executor (executor="processes") owns worker-process
        # replicas of the partitions and answers probes by shard id; the
        # map-style executors run closures over the in-process shards.
        self._pool = (self._executor
                      if getattr(self._executor, "routes_probes", False)
                      else None)
        if self._pool is not None:
            self._pool.bind(self)
        self._logical_probes = 0      # match_candidates calls (fan-outs)
        #: manifest header of the persisted file this repository was
        #: loaded from (set by ``load_repository``), or None.
        self.manifest_metadata = None

    # Shard layout -----------------------------------------------------------

    def owning_shard(self, entry_loads):
        """The shard that owns an entry reading ``entry_loads``.

        Keyed entries hash their representative (minimum) load key;
        unkeyable or load-free entries go to the catch-all partition.
        """
        if not entry_loads:  # None (unkeyable) or empty
            return self._catchall
        return self._shards[shard_index_for_key(min(entry_loads),
                                                self.num_shards)]

    def shards(self):
        """The regular shards, in shard-id order (catch-all excluded)."""
        return tuple(self._shards)

    def partitions(self):
        """All partitions: the regular shards, then the catch-all."""
        return tuple(self._shards) + (self._catchall,)

    def shard_report(self):
        """Per-shard occupancy/probe/hit counters as a list of dicts
        (catch-all last, shard id ``-1``), for operational reporting.

        Per-shard ``probes`` counts *consultations*: one logical match
        probe that fans out to an owned shard **and** the occupied
        catch-all shows up in both rows. Use :meth:`merged_shard_stats`
        for repository-level totals — summing this column double-counts
        every such probe.
        """
        return [shard.stats.as_dict() for shard in self.partitions()]

    def merged_shard_stats(self):
        """Repository-level totals across all partitions.

        ``probes`` is the number of **logical** ``match_candidates``
        fan-outs, counted once per call at the repository level —
        summing the per-shard probe counters instead would double-count
        any probe that consulted both an owned shard and the occupied
        catch-all (each partition counts its own consultation). The
        summed figure is still reported as ``shard_consults``.
        ``candidates_returned`` and ``match_hits`` are exact sums of the
        per-partition counters — with the caveat that an unkeyable-plan
        probe falls back to the global scan without consulting any
        partition, so it contributes to ``probes`` but to neither
        ``shard_consults`` nor ``candidates_returned`` (its rewrites are
        still credited to the owning shard's ``match_hits``).
        """
        return {
            "entries": len(self),
            "probes": self._logical_probes,
            "shard_consults": sum(shard.stats.probes
                                  for shard in self.partitions()),
            "candidates_returned": sum(shard.stats.candidates_returned
                                       for shard in self.partitions()),
            "match_hits": sum(shard.stats.match_hits
                              for shard in self.partitions()),
        }

    def shard_stats(self, shard_id):
        """The :class:`~repro.restore.stats.ShardStats` of partition
        ``shard_id`` — the hook a replicated worker pool credits its
        ``failovers``/``replica_fanout`` counters through, so promotion
        and fan-out activity shows up in :meth:`shard_report`."""
        return self._partition_by_id(shard_id).stats

    def record_match_hit(self, entry):
        """Credit a successful rewrite to the shard owning ``entry``
        (called by the manager after the matcher picks a candidate)."""
        shard = self._shard_of.get(entry.entry_id)
        if shard is not None:
            shard.stats.match_hits += 1

    def close(self):
        """Release the probe executor (no-op for the serial executor).

        An attached :class:`~repro.restore.wal.RepositoryLog` is flushed
        first: under worker-owned durability its pending records route
        through the very workers this call is about to tear down, so
        flushing after the pool closed would silently fall back to the
        front-end path — correct but unrouted. Flushing here keeps
        "close() loses nothing" true on the worker-owned path too."""
        log = getattr(self, "persistence_log", None)
        if log is not None and getattr(log, "repository", None) is self:
            log.flush()
        self._executor.close()

    def shard_id_of(self, entry):
        """The id of the shard owning ``entry`` (catch-all is ``-1``),
        or None when the entry is not registered with any shard."""
        shard = self._shard_of.get(entry.entry_id)
        return shard.shard_id if shard is not None else None

    def shard_sizes(self):
        """Entry count per partition, ``{shard_id: entries}``, every
        partition included (the catch-all under ``-1``, empty shards at
        0) — the denominator of segmented persistence's per-shard dirty
        ratio, and the partition universe its manifest records."""
        return {shard.shard_id: len(shard) for shard in self.partitions()}

    def shard_members(self, shard_id):
        """The entries owned by partition ``shard_id``
        (insertion-ordered; the segmented snapshot writer re-sorts by
        scan rank). O(shard), not O(repository) — what keeps a
        dirty-shard section rewrite proportional to the shard."""
        for shard in self.partitions():
            if shard.shard_id == shard_id:
                return tuple(shard)
        raise RepositoryError(f"no shard {shard_id!r} in this repository")

    # Mutation ---------------------------------------------------------------
    #
    # Inserts and removals are the inherited global operations; the
    # _post_insert/_post_remove hooks register the entry with its owning
    # shard so that change-event listeners (incremental persistence)
    # observe a consistent shard layout when the event fires.

    def _post_insert(self, entry):
        # The global load index just computed and cached the entry's leaf
        # loads; reuse them rather than re-walking the plan.
        entry_loads = self._load_index.loads_of(entry.entry_id)
        shard = self.owning_shard(entry_loads)
        shard.add(entry, entry_loads)
        self._shard_of[entry.entry_id] = shard
        if self._pool is not None:
            self._pool.record_insert(shard.shard_id, entry)

    def _post_remove(self, entry):
        shard = self._shard_of.pop(entry.entry_id, None)
        if shard is not None:
            shard.discard(entry)
            if self._pool is not None:
                self._pool.record_remove(shard.shard_id, entry)

    def _flush_inserted_groups(self, groups):
        # One grouped worker message per shard an insert_batch touched
        # (the entries' mutations are already buffered per shard by
        # _post_insert; this ships them eagerly instead of on the next
        # probe of that shard).
        if self._pool is not None:
            self._pool.flush_shards(sorted(groups))

    def record_use(self, entry, tick):
        super().record_use(entry, tick)
        # Worker replicas mirror the partition state, stats included:
        # route the freshly stamped values into the owning worker's
        # mutation stream, exactly as inserts and removals are.
        if self._pool is not None:
            shard = self._shard_of.get(entry.entry_id)
            if shard is not None:
                self._pool.record_use(shard.shard_id, entry)

    # Matching ---------------------------------------------------------------

    def _filtered_candidates(self, plan):
        """Fan out to the shards owning ``plan``'s leaf-load keys, merge
        their candidates back into the global priority order.

        This is the sharded half of the inherited ``match_candidates``
        (the ranker tail is shared base-class code, so both repository
        flavors have one ranking path). A job touching k load keys
        consults at most k shards plus the catch-all (only when the
        catch-all is occupied). Unkeyable plans fall back to the full
        global scan, exactly like the unsharded repository. Either way
        this counts as **one** logical probe (see
        :meth:`merged_shard_stats`), however many partitions it fans
        out to.
        """
        self._logical_probes += 1
        job_loads = leaf_loads(plan)
        if job_loads is None:
            return self.scan()
        shard_ids = self._consulted_shard_ids(job_loads)
        if not shard_ids:
            return ()
        if self._pool is not None:
            return self._merge_pool_answer(
                self._pool.match_probe(shard_ids, job_loads))
        partitions = [self._partition_by_id(shard_id)
                      for shard_id in shard_ids]
        buckets = self._executor.map(lambda shard: shard.probe(job_loads),
                                     partitions)
        rank = self.scan_rank()
        return tuple(sorted(
            (entry for bucket in buckets for entry in bucket),
            key=lambda entry: rank[entry.entry_id]))

    def _consulted_shard_ids(self, job_loads):
        """The partition ids a probe for ``job_loads`` must consult: the
        owners of the job's load keys, plus the catch-all when occupied."""
        shard_ids = sorted({shard_index_for_key(key, self.num_shards)
                            for key in job_loads})
        if len(self._catchall):
            shard_ids.append(CATCHALL_SHARD)
        return shard_ids

    def _partition_by_id(self, shard_id):
        return (self._catchall if shard_id == CATCHALL_SHARD
                else self._shards[shard_id])

    def _merge_pool_answer(self, answers):
        """Resolve one pool probe's ``{shard_id: [entry ids]}`` answer to
        entries in global scan order, crediting each consulted
        partition's statistics exactly as its in-process ``probe`` would
        have (so shard reports are executor-independent)."""
        entries = []
        for shard_id, keys in answers.items():
            shard = self._partition_by_id(shard_id)
            shard.stats.probes += 1
            shard.stats.candidates_returned += len(keys)
            entries.extend(self._by_id[key] for key in keys)
        rank = self.scan_rank()
        return tuple(sorted(entries,
                            key=lambda entry: rank[entry.entry_id]))

    def match_candidates_batch(self, plans, ranker=None):
        """Candidate tuples for many plans in one probe round-trip.

        With a worker pool this ships **one** message per consulted
        worker for the whole batch (the IPC-amortized service path: the
        workers filter all their probes concurrently, the front-end
        merges); otherwise it degrades to per-plan
        :meth:`match_candidates`. Results are positionally aligned with
        ``plans`` and identical to the per-plan calls, decision for
        decision.
        """
        if self._pool is None:
            return [self.match_candidates(plan, ranker=ranker)
                    for plan in plans]
        probes = []
        direct = {}   # plan index -> candidates resolved without the pool
        for index, plan in enumerate(plans):
            self._logical_probes += 1
            job_loads = leaf_loads(plan)
            if job_loads is None:
                direct[index] = self.scan()
                continue
            shard_ids = self._consulted_shard_ids(job_loads)
            if not shard_ids:
                direct[index] = ()
                continue
            probes.append((index, shard_ids, job_loads))
        answers = self._pool.match_probe_batch(probes) if probes else {}
        results = []
        for index in range(len(plans)):
            candidates = (direct[index] if index in direct
                          else self._merge_pool_answer(
                              answers.get(index, {})))
            if ranker is not None and not ranker.is_structural:
                candidates = tuple(ranker.order(candidates, self))
            results.append(candidates)
        return results

    @property
    def worker_pool(self):
        """The :class:`~repro.restore.service.ShardWorkerPool` routing
        this repository's probes, or None for the map-style executors."""
        return self._pool

    def describe(self):
        lines = [
            f"ShardedRepository: {len(self)} entr(ies) across "
            f"{self.num_shards} shard(s) "
            f"(+{len(self._catchall)} catch-all), "
            f"executor={getattr(self._executor, 'name', 'custom')}"
        ]
        for shard in self.partitions():
            lines.append(f"- {shard.stats.describe()}")
        lines.extend(f"- {entry.describe()}" for entry in self.scan())
        return "\n".join(lines)
