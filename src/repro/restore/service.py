"""The shard-worker service: repository partitions as worker processes.

:class:`~repro.restore.sharding.ShardedRepository` partitioned the probe
work, but every shard still lives in one interpreter, so match
throughput caps at the GIL no matter how many shards exist. This module
promotes each partition — the hash shards *and* the catch-all — to a
worker **process** that exclusively owns its entries and its
:class:`~repro.restore.index.LoadIndex`, coordinated by the front-end
repository over ``multiprocessing`` queues:

* ``find_equivalent`` never leaves the front-end: the canonical
  fingerprint dict is the global cross-shard dedup channel and stays
  with the coordinator;
* inserts and removals are routed by the entry's load-key hash to the
  owning worker, **batched**: mutations buffer per worker and ship as
  one ``apply`` message right before the next probe that consults it
  (queue ordering makes the flush happen-before the probe);
* ``match_candidates`` fans out by the job's load keys — every consulted
  worker gets the probe, they filter their slices concurrently (separate
  processes, no GIL), and the front-end merges the answered entry ids
  back into the paper's global priority order. Decisions are
  bit-identical to the serial path by construction: workers only
  *filter* (the same :class:`LoadIndex` logic over the same entries);
  ordering, ranking, containment, and statistics stay with the
  front-end.

Failure model: a worker that dies (crash, kill) is detected at the next
dispatch or response wait — queues never block indefinitely — and is
**respawned and re-seeded**. When the repository has an attached
:class:`~repro.restore.wal.RepositoryLog`, the fresh worker replays the
dead partition's durable state (its section + segment files plus the
log's pending records — one partition's files only, which is what the
per-shard segmentation and the v5 order-delta manifests bought);
otherwise it re-seeds from the front-end's in-memory members. Either
way the front-end's scan order, per-shard statistics, and match
decisions are unaffected — workers hold replicas, the coordinator holds
the truth.

:class:`ShardWorkerState` is the worker's in-process core, exercised
directly by unit tests (child processes are invisible to coverage);
``_worker_main`` is the thin queue loop around it.
:class:`RepositoryService` is the standalone service mode: a
process-backed repository plus optional durability behind one
context-managed lifecycle.

:mod:`repro.restore.replication` builds on this module: its
:class:`~repro.restore.replication.ReplicatedWorkerPool` keeps ``k``
bit-identical worker replicas per partition so a crashed primary fails
over to a warm peer (no durable replay on that path) and read-only
probes fan out round-robin across the replica set. Pass ``replicas=k``
to :class:`RepositoryService` (or to
:class:`~repro.restore.sharding.ShardedRepository` with
``executor="processes"``) to enable it.

**Worker-owned durable state.** When an attached
:class:`~repro.restore.wal.RepositoryLog` negotiates worker ownership
(``RepositoryLog.attach`` calls :meth:`ShardWorkerPool.
enable_worker_durability`), each subsequently spawned worker inherits a
:class:`~repro.restore.gateway.DfsClient` and takes over its own
partition's durable writes: pending change records ride the mutation
flush as one combined ``apply`` message and the worker appends them to
its segment itself (:meth:`ShardWorkerState.append_durable`, acked);
compaction sends each dirty worker a ``compact_section`` request and
the worker serializes its replica into the fresh generation-named
section file (:meth:`ShardWorkerState.write_section`) — the per-shard
serialization runs in the worker processes concurrently. The front-end
log shrinks to a manifest coordinator: it collects the completions and
performs the single manifest swap, the order-log delta, and the segment
truncations itself. Every worker-side durable op is *declinable*: a
missing client, an out-of-sync replica, or a crash mid-write makes the
coordinator write the file front-end-side (section files are
generation-named and content-stable, so the fallback rewrite is
idempotent). The manifest itself is never worker-writable — the
gateway client has no such operation, and the statlint
``crash-ordering`` rule R5 enforces it statically.
"""

import json
import multiprocessing
import queue
import time

from repro.common.errors import RepositoryError
from repro.restore.gateway import DfsGateway
from repro.restore.index import LoadIndex
from repro.restore.persistence import entry_from_json, entry_to_json


class WorkerCrashed(RepositoryError):
    """A shard worker died mid-conversation (internal: the pool catches
    this and recovers the partition)."""


class ShardWorkerState:
    """The in-process core of one shard worker.

    Holds the partition's skeleton entries keyed by the wire key (the
    front-end's entry id) plus a private
    :class:`~repro.restore.index.LoadIndex` over just those entries, and
    answers probes with the wire keys of the local entries the job's
    load set cannot rule out — the worker-process analogue of
    :meth:`RepositoryShard.probe`. Kept free of any multiprocessing so
    the lock-step tests can drive it directly in-process.
    """

    def __init__(self, durable_store=None):
        self._entries = {}      # wire key -> skeleton entry, insertion order
        self._key_of = {}       # local entry_id -> wire key
        self._load_index = LoadIndex()
        #: worker-owned durability: a fork-safe DFS gateway client
        #: (:class:`~repro.restore.gateway.DfsClient`), or None in
        #: front-end-checkpointing mode — durable requests then decline
        #: and the coordinator writes the files itself
        self._durable = durable_store

    def __len__(self):
        return len(self._entries)

    def apply(self, mutations):
        """Apply one batched hand-off: ``("add", key, entry_json)``,
        ``("discard", key)``, and ``("use", key, use_count,
        last_used_tick)`` tuples, in order.

        Use-stamps carry the stamped *values* (not an increment),
        mirroring the durable log's use records — so a replica fed the
        mutation stream holds exactly the stats a replica re-seeded
        from the log (or from the front-end members) would, which is
        what makes replica state images bit-comparable."""
        for mutation in mutations:
            if mutation[0] == "add":
                _, key, entry_json = mutation
                entry = entry_from_json(entry_json)
                self._entries[key] = entry
                self._key_of[entry.entry_id] = key
                self._load_index.add(entry)
            elif mutation[0] == "use":
                entry = self._entries.get(mutation[1])
                if entry is not None:
                    entry.stats.use_count = mutation[2]
                    entry.stats.last_used_tick = mutation[3]
            else:
                entry = self._entries.pop(mutation[1], None)
                if entry is not None:
                    del self._key_of[entry.entry_id]
                    self._load_index.discard(entry)

    def probe(self, job_loads):
        """Wire keys of the local candidates for a job reading
        ``job_loads`` (insertion order; the front-end re-sorts the merge
        into global scan order)."""
        candidate_ids = self._load_index.candidate_ids(job_loads)
        if not candidate_ids:
            return []
        return [key for key, entry in self._entries.items()
                if entry.entry_id in candidate_ids]

    def probe_batch(self, probes):
        """``[(probe_id, keys)]`` for a batch of ``(probe_id,
        job_loads)`` probes — one message each way per worker, however
        many probes the batch holds."""
        return [(probe_id, self.probe(job_loads))
                for probe_id, job_loads in probes]

    def dump(self):
        """Canonical state image, ``(wire key, entry json)`` sorted by
        key. Replica-equivalence checks compare these: a replica fed the
        mutation stream and one backfilled from a snapshot legitimately
        differ in dict insertion order (probes are re-sorted by the
        front-end anyway), so the sorted image is what "bit-identical"
        means across a replica set."""
        return sorted((key, entry_to_json(entry))
                      for key, entry in self._entries.items())

    # Worker-owned durability ------------------------------------------------

    def append_durable(self, payload):
        """Append the coordinator's pending change records to this
        partition's own segment file: ``payload`` is ``{"segment":
        file, "lines": [serialized records]}``, shipped on the same
        ``apply`` message as the mutation batch. The lines are appended
        verbatim — the coordinator owns sequence numbers and stable
        keys, the worker owns the write — and the return value is the
        ack the coordinator waits on before clearing its pending
        buffer. ``{"appended": None}`` declines (no gateway client):
        the coordinator appends front-end-side instead."""
        if self._durable is None:
            return {"appended": None}
        lines = payload["lines"]
        if lines:
            self._durable.append_lines(payload["segment"], lines)
        return {"appended": len(lines)}

    def write_section(self, section_file, members):
        """Serialize this replica's entries into a fresh section file
        (worker-owned compaction). ``members`` is the coordinator's
        ``[(wire key, stable key, position, sequence, use_count,
        last_used_tick)]`` in scan order: positions, stable keys, and
        the insertion-sequence tie-break are coordinator state the
        replica does not track, and the two mutable stats fields are
        read from the *live* entry at compact time (the replica's
        mirror is event-time state, which a stats object mutated after
        its last recorded event would lag) — all of them ride the
        request and are patched into the serialized records, so the
        bytes are identical to the front-end writing the section
        itself, by construction: every other field is fixed at insert.
        Declines (``"entries": None``) without a gateway client or when
        any member is missing locally: an out-of-sync replica must not
        write a hole into the durable state."""
        if self._durable is None:
            return {"file": section_file, "entries": None}
        lines = []
        for (wire_key, stable_key, position, sequence,
             use_count, last_used_tick) in members:
            entry = self._entries.get(wire_key)
            if entry is None:
                return {"file": section_file, "entries": None}
            entry_json = entry_to_json(entry)
            entry_json["sequence"] = sequence
            entry_json["stats"]["use_count"] = use_count
            entry_json["stats"]["last_used_tick"] = last_used_tick
            lines.append(json.dumps(
                {"position": position, "key": stable_key,
                 "entry": entry_json}, sort_keys=True))
        self._durable.write_section(section_file, lines)
        return {"file": section_file, "entries": len(lines)}


def _worker_main(requests, responses, durable_store=None):  # statlint: process-entrypoint
    """The worker-process loop: drain the request queue into a
    :class:`ShardWorkerState`. ``apply`` is fire-and-forget (mutations
    pipeline behind the next probe, which queue ordering sequences)
    *unless* the message carries a durable payload — the combined
    mutation+append hand-off is acked, because the coordinator must not
    drop its pending records before the segment append landed;
    everything else answers on the response queue."""
    state = ShardWorkerState(durable_store)
    while True:
        message = requests.get()
        op = message[0]
        if op == "apply":
            state.apply(message[1])
            if len(message) > 2:
                responses.put(state.append_durable(message[2]))
        elif op == "compact_section":
            responses.put(state.write_section(message[1], message[2]))
        elif op == "probe":
            responses.put(state.probe(message[1]))
        elif op == "probe_batch":
            responses.put(state.probe_batch(message[1]))
        elif op == "size":
            responses.put(len(state))
        elif op == "dump":
            responses.put(state.dump())
        elif op == "stop":
            responses.put("stopped")
            return


class _WorkerHandle:
    """One worker process plus its request/response queues."""

    #: default ceiling on one response wait — a worker that is alive but
    #: silent this long is treated as crashed and replaced. Deployments
    #: (and the directed timeout tests) override it per pool via the
    #: ``response_timeout`` constructor parameter.
    RESPONSE_TIMEOUT = 60.0

    def __init__(self, shard_id, context, response_timeout=None,
                 durable_store=None):
        self.shard_id = shard_id
        self.response_timeout = (self.RESPONSE_TIMEOUT
                                 if response_timeout is None
                                 else response_timeout)
        #: per-shard spawn ordinal — 0 for a pool's single worker; the
        #: replicated pool numbers each replica (and each replacement)
        #: so fault injection can address one replica deterministically
        self.replica_seq = 0
        #: the worker owns its partition's durable writes (a DFS
        #: gateway client was inherited at fork time)
        self.durable_capable = durable_store is not None
        #: the parent-side reference to that inherited client. The pool
        #: never calls through it — the worker does — but crash
        #: harnesses need it: killing the process while its feeder
        #: thread holds the gateway queue's shared write lock would
        #: poison the queue for every surviving worker, so a safe kill
        #: quiesces that lock first (tests/faultinject.py).
        self.durable_store = durable_store
        self.requests = context.Queue()
        self.responses = context.Queue()
        self.process = context.Process(
            target=_worker_main,
            args=(self.requests, self.responses, durable_store),
            daemon=True)
        self.process.start()

    def alive(self):
        return self.process.is_alive()

    def send(self, message):
        if not self.alive():
            raise WorkerCrashed(
                f"shard worker {self.shard_id} is dead (exit code "
                f"{self.process.exitcode})")
        try:
            self.requests.put(message)
        except (BrokenPipeError, OSError) as error:
            raise WorkerCrashed(
                f"shard worker {self.shard_id}: {error}") from error

    def receive(self):
        deadline = time.monotonic() + self.response_timeout
        while True:
            try:
                return self.responses.get(timeout=0.05)
            except queue.Empty:
                pass
            if not self.alive():
                # The response may still be in flight in the pipe buffer
                # (written just before the death): one last look.
                try:
                    return self.responses.get(timeout=0.2)
                except queue.Empty:
                    raise WorkerCrashed(
                        f"shard worker {self.shard_id} died before "
                        f"answering (exit code {self.process.exitcode})")
            if time.monotonic() > deadline:
                self.kill()
                raise WorkerCrashed(
                    f"shard worker {self.shard_id} unresponsive for "
                    f"{self.response_timeout:.0f}s")

    def stop(self):
        """Graceful shutdown; falls back to kill."""
        try:
            if self.alive():
                self.requests.put(("stop",))
                self.process.join(timeout=2.0)
        except (BrokenPipeError, OSError):
            pass
        self.kill()

    def kill(self):
        if self.process.is_alive():
            self.process.kill()
            self.process.join(timeout=2.0)
        self.requests.close()
        self.responses.close()


class ShardWorkerPool:
    """Worker processes behind a routing front-end.

    Plugs into :class:`~repro.restore.sharding.ShardedRepository` as the
    ``executor="processes"`` flavor. Unlike the map-style executors it
    does not run closures over in-process shard objects — it *routes*:
    the repository forwards every insert/removal to the owning worker's
    buffer (:meth:`record_insert`/:meth:`record_remove`) and probes
    through :meth:`match_probe`/:meth:`match_probe_batch`, which flush
    the consulted workers' buffers (batched hand-off), fan the probe
    out, and gather per-worker candidate ids.

    Workers spawn lazily per partition on first use (``fork`` context,
    daemon processes) and are respawned on crash — see
    :meth:`_recover` for the durable-replay re-seed. ``recoveries``
    counts them.
    """

    name = "processes"
    #: marks this executor as a routing pool for the repository (the
    #: map-style path cannot ship bound shard objects across processes)
    routes_probes = True

    def __init__(self, max_workers=None, response_timeout=None):
        # max_workers is accepted for signature parity with the other
        # executors; the pool always runs one worker per partition.
        self._context = multiprocessing.get_context("fork")
        self._repository = None
        self._workers = {}    # shard_id -> _WorkerHandle
        self._buffers = {}    # shard_id -> pending mutation tuples
        self._response_timeout = response_timeout
        self._gateway = None  # DfsGateway once worker durability is on
        self.recoveries = 0
        self._closed = False

    def _spawn(self, shard_id):
        """Start one worker process for ``shard_id`` (the single spawn
        point: the replicated pool overlays replica numbering here).
        With worker durability negotiated, the worker inherits a fresh
        gateway client at fork and owns its partition's durable
        writes."""
        durable_store = (self._gateway.client()
                         if self._gateway is not None else None)
        return _WorkerHandle(shard_id, self._context,
                             self._response_timeout,
                             durable_store=durable_store)

    # Wiring -----------------------------------------------------------------

    def bind(self, repository):
        """Bind the front-end repository (called by
        ``ShardedRepository.__init__``). The pool needs it for recovery
        re-seeds and wire-key -> entry resolution."""
        if self._repository is not None and self._repository is not repository:
            raise RepositoryError(
                "this ShardWorkerPool is already bound to a different "
                "repository; each pool serves exactly one front-end")
        self._repository = repository

    def map(self, fn, items):
        raise RepositoryError(
            "ShardWorkerPool routes probes by shard; it cannot run "
            "arbitrary closures (use executor='serial' or 'threads')")

    # Mutation routing (buffered hand-off) -----------------------------------

    def record_insert(self, shard_id, entry):
        self._buffers.setdefault(shard_id, []).append(
            ("add", entry.entry_id, entry_to_json(entry)))

    def record_remove(self, shard_id, entry):
        self._buffers.setdefault(shard_id, []).append(
            ("discard", entry.entry_id))

    def record_use(self, shard_id, entry):
        # Value-based, like the durable log's use records: the stamp has
        # already been applied to the front-end entry, so shipping the
        # resulting values keeps every replica — stream-fed, re-seeded
        # from members, or replayed from the log — in agreement.
        self._buffers.setdefault(shard_id, []).append(
            ("use", entry.entry_id, entry.stats.use_count,
             entry.stats.last_used_tick))

    def buffered_mutations(self):
        """Mutations recorded but not yet shipped (observability)."""
        return sum(len(batch) for batch in self._buffers.values())

    def flush_shards(self, shard_ids=None):
        """Ship buffered mutations to the listed shards' workers now
        (all shards when ``shard_ids`` is None); returns the number of
        mutations shipped.

        Only *already-spawned, live* workers are fed: spawning here
        would fork from whatever thread called the flush (the async
        registrar), and a dead worker's buffer must survive for the
        recovery replay the next probe performs — in both cases the
        buffer is simply left in place, which is always safe because
        worker ``apply`` is idempotent (adds are keyed overwrites, use
        stamps carry absolute values).
        """
        if self._closed:
            return 0
        if shard_ids is None:
            shard_ids = [shard_id for shard_id, batch in self._buffers.items()
                         if batch]
        shipped = 0
        for shard_id in shard_ids:
            mutations = self._buffers.get(shard_id)
            if not mutations:
                continue
            handle = self._workers.get(shard_id)
            if handle is None or not handle.alive():
                continue
            try:
                handle.send(("apply", mutations))
            except WorkerCrashed:  # statlint: disable=exception-hygiene -- not a swallow: the buffer is deliberately kept un-cleared, and the next probe of this shard runs the full _recover() replay
                continue
            self._buffers[shard_id] = []
            shipped += len(mutations)
        return shipped

    # Worker-owned durability ------------------------------------------------

    @property
    def durable_enabled(self):
        """Workers own their partitions' durable writes: a DFS gateway
        was negotiated (:meth:`enable_worker_durability`) and the pool
        is live."""
        return self._gateway is not None and not self._closed

    def enable_worker_durability(self, dfs):
        """Negotiate worker-owned durable state (called by
        ``RepositoryLog.attach``): workers spawned from here on inherit
        a :class:`~repro.restore.gateway.DfsClient` and take ownership
        of their partition's segment appends and section rewrites.
        Workers already running keep serving probes without one — the
        log falls back to front-end writes for them until they
        respawn."""
        if self._closed:
            raise RepositoryError("this ShardWorkerPool is closed")
        if self._gateway is None:
            self._gateway = DfsGateway(dfs, self._context)
        elif self._gateway.dfs is not dfs:
            raise RepositoryError(
                "this pool's DFS gateway already serves a different "
                "file system; one pool cannot write through two")
        return self._gateway

    def _durable_worker(self, shard_id):
        """The live, durable-capable worker for ``shard_id`` with its
        mutation buffer flushed — or None (the caller writes
        front-end-side). Unlike :meth:`_ready_worker` this never spawns
        and never raises: checkpointing must not fork mid-flush, and a
        dead worker is the next probe's recovery problem."""
        if self._closed:
            return None
        handle = self._workers.get(shard_id)
        if (handle is None or not handle.alive()
                or not handle.durable_capable):
            return None
        mutations = self._buffers.get(shard_id)
        if mutations:
            try:
                handle.send(("apply", mutations))
            except WorkerCrashed:  # statlint: disable=exception-hygiene -- not a swallow: the buffer stays un-cleared for the next probe's _recover() replay and the caller falls back to front-end durability
                return None
            self._buffers[shard_id] = []
        return handle

    def flush_durable(self, shard_id, segment, lines):
        """Ship the shard's buffered mutations *and* its pending
        durable records as one combined ``apply`` message: the worker
        applies the mutations, appends the records to its own segment
        through the DFS gateway, and acks. Returns True on the ack;
        False when no live durable-capable worker serves the shard (the
        caller appends front-end-side). Raises :class:`WorkerCrashed`
        when the worker died with the append in flight — the records
        may or may not have landed, so the caller must reconcile its
        pending buffer against the segment before any retry (see
        ``RepositoryLog._reconcile_pending_locked``)."""
        if self._closed:
            return False
        handle = self._workers.get(shard_id)
        if (handle is None or not handle.alive()
                or not handle.durable_capable):
            return False
        mutations = self._buffers.get(shard_id, [])
        handle.send(("apply", mutations,
                     {"segment": segment, "lines": list(lines)}))
        if mutations:
            # The worker got the batch; a later crash is recovered by
            # the full re-seed, never by replaying this buffer.
            self._buffers[shard_id] = []
        answer = handle.receive()
        return bool(isinstance(answer, dict)
                    and answer.get("appended") is not None)

    def compact_sections(self, requests):
        """Ask each listed shard's worker to rewrite its own section
        file (worker-owned compaction). ``requests`` maps ``shard_id ->
        (section_file, members)`` with ``members`` as
        :meth:`ShardWorkerState.write_section` expects; the result maps
        ``shard_id -> written entry count``, with None for every shard
        the front-end must write itself (no live durable-capable
        worker, an out-of-sync replica, or a crash mid-rewrite — dead
        workers are left for the next probe's recovery, never respawned
        here).

        Dispatches to every worker before collecting any completion, so
        the per-shard serialization genuinely overlaps across
        partitions — the parallelism the worker-durable ablation arm
        measures."""
        results = {shard_id: None for shard_id in requests}
        dispatched = []
        for shard_id in sorted(requests):
            handle = self._durable_worker(shard_id)
            if handle is None:
                continue
            section_file, members = requests[shard_id]
            try:
                handle.send(("compact_section", section_file, members))
            except WorkerCrashed:  # statlint: disable=exception-hygiene -- not a swallow: the shard stays None in the results, the coordinator rewrites its section itself, and the next probe recovers the worker
                continue
            dispatched.append((shard_id, handle))
        for shard_id, handle in dispatched:
            try:
                answer = handle.receive()
            except WorkerCrashed:  # statlint: disable=exception-hygiene -- same fallback: an unacked rewrite is redone by the coordinator (generation-named file, identical bytes — idempotent)
                continue
            if isinstance(answer, dict):
                results[shard_id] = answer.get("entries")
        return results

    # Probe fan-out ----------------------------------------------------------

    def match_probe(self, shard_ids, job_loads):
        """Fan one probe out to the workers of ``shard_ids``; returns
        ``{shard_id: [entry ids]}``. Dispatches to every worker before
        collecting any answer, so the per-worker filters genuinely
        overlap."""
        return {
            shard_id: answer for (shard_id, _), answer in zip(
                *self._dispatch(shard_ids, lambda _: ("probe", job_loads)))
        }

    def match_probe_batch(self, probes):
        """Fan a *batch* of probes out in one message per consulted
        worker: ``probes`` is ``[(probe_id, shard_ids, job_loads)]``,
        the result ``{probe_id: {shard_id: [entry ids]}}``. This is the
        IPC-amortized path the benchmark drives: worker count messages
        per batch instead of probes x shards."""
        per_worker = {}
        for probe_id, shard_ids, job_loads in probes:
            for shard_id in shard_ids:
                per_worker.setdefault(shard_id, []).append(
                    (probe_id, job_loads))
        shard_ids = sorted(per_worker)
        dispatched, answers = self._dispatch(
            shard_ids, lambda shard_id: ("probe_batch",
                                         per_worker[shard_id]))
        results = {}
        for (shard_id, _), answer in zip(dispatched, answers):
            for probe_id, keys in answer:
                results.setdefault(probe_id, {})[shard_id] = keys
        return results

    def _dispatch(self, shard_ids, message_for):
        """Send ``message_for(shard_id)`` to every listed worker (after
        flushing its mutation buffer), then gather one response each; a
        worker that died is recovered and its message retried once on
        the fresh replica (probes are read-only, so the retry is
        safe)."""
        dispatched = []
        for shard_id in shard_ids:
            message = message_for(shard_id)
            try:
                handle = self._ready_worker(shard_id)
                handle.send(message)
            except WorkerCrashed:
                handle = self._recover(shard_id)
                handle.send(message)
            dispatched.append((shard_id, handle))
        answers = []
        for shard_id, handle in dispatched:
            try:
                answers.append(handle.receive())
            except WorkerCrashed:
                fresh = self._recover(shard_id)
                fresh.send(message_for(shard_id))
                answers.append(fresh.receive())
        return dispatched, answers

    def worker_size(self, shard_id):
        """The entry count a worker's replica holds (test/observability
        hook; flushes the buffer so the answer reflects every recorded
        mutation)."""
        try:
            handle = self._ready_worker(shard_id)
            handle.send(("size",))
            return handle.receive()
        except WorkerCrashed:
            handle = self._recover(shard_id)
            handle.send(("size",))
            return handle.receive()

    # Worker lifecycle -------------------------------------------------------

    def _ready_worker(self, shard_id):
        """The live worker for ``shard_id`` with its buffer flushed;
        raises :class:`WorkerCrashed` if it died (callers recover)."""
        if self._closed:
            raise RepositoryError("this ShardWorkerPool is closed")
        handle = self._workers.get(shard_id)
        if handle is None:
            handle = self._spawn(shard_id)
            self._workers[shard_id] = handle
        elif not handle.alive():
            raise WorkerCrashed(f"shard worker {shard_id} is dead")
        mutations = self._buffers.get(shard_id)
        if mutations:
            handle.send(("apply", mutations))
            self._buffers[shard_id] = []
        return handle

    def _recover(self, shard_id):
        """Respawn a dead worker and re-seed its partition.

        The seed is the partition's durable state when the front-end has
        an attached RepositoryLog — section + segment + pending records,
        one partition's files only — with the stable keys translated
        back to entry ids; without a log (or if the durable view
        disagrees with the live membership) the front-end's in-memory
        members. The pool's own buffer for the shard is dropped: the
        full re-seed already reflects every recorded mutation."""
        self.recoveries += 1
        old = self._workers.pop(shard_id, None)
        if old is not None:
            old.kill()
        self._buffers[shard_id] = []
        handle = self._spawn(shard_id)
        self._workers[shard_id] = handle
        mutations = self._replay_mutations(shard_id)
        if mutations:
            handle.send(("apply", mutations))
        return handle

    def _replay_mutations(self, shard_id):
        repository = self._repository
        members = repository.shard_members(shard_id)
        log = getattr(repository, "persistence_log", None)
        if log is not None and hasattr(log, "partition_snapshot"):
            snapshot = log.partition_snapshot(shard_id)
            by_stable = {key: entry_id
                         for entry_id, key in log.stable_keys().items()}
            if (set(snapshot) <= set(by_stable)
                    and len(snapshot) == len(members)):
                return [("add", by_stable[key], entry_json)
                        for key, entry_json in snapshot.items()]
        return [("add", entry.entry_id, entry_to_json(entry))
                for entry in members]

    def close(self):
        """Stop every worker, then the DFS gateway (idempotent)."""
        if self._closed:
            return
        self._closed = True
        for handle in self._workers.values():
            handle.stop()
        self._workers = {}
        self._buffers = {}
        if self._gateway is not None:
            self._gateway.close()
            self._gateway = None

    def describe(self):
        live = sum(1 for handle in self._workers.values() if handle.alive())
        return (f"ShardWorkerPool: {live}/{len(self._workers)} worker(s) "
                f"live, {self.buffered_mutations()} buffered mutation(s), "
                f"{self.recoveries} recover(ies)")

    def __repr__(self):
        return f"<{self.describe()}>"


class RepositoryService:
    """The standalone service mode: a process-backed repository behind
    one context-managed lifecycle.

    Builds a :class:`~repro.restore.sharding.ShardedRepository` with
    ``executor="processes"`` (or wraps one you built), optionally
    attaches a :class:`~repro.restore.wal.RepositoryLog` for
    durability, and exposes the repository surface. ``replicas=k`` (k ≥
    2) serves each partition from ``k`` warm worker replicas — crash
    failover without durable replay, probes fanned out round-robin (see
    :mod:`repro.restore.replication`); ``response_timeout`` bounds how
    long one response wait may stay silent before the worker is
    declared crashed. :meth:`close` flushes the log and stops the
    workers — the multi-process analogue of ``ReStore.close()``::

        with RepositoryService(num_shards=8, replicas=2,
                               persistence=RepositoryLog(dfs)) as service:
            service.insert(entry)
            candidates = service.match_candidates(plan)
    """

    def __init__(self, num_shards=4, repository=None, persistence=None,
                 replicas=1, response_timeout=None):
        from repro.restore.sharding import ShardedRepository
        if repository is None:
            repository = ShardedRepository(num_shards=num_shards,
                                           executor="processes",
                                           replicas=replicas,
                                           response_timeout=response_timeout)
        if repository.worker_pool is None:
            raise RepositoryError(
                "RepositoryService needs a process-backed repository "
                "(executor='processes')")
        self.repository = repository
        self.persistence = persistence
        if persistence is not None:
            persistence.attach(repository)
        self._closed = False

    @property
    def pool(self):
        return self.repository.worker_pool

    def find_equivalent(self, plan):
        return self.repository.find_equivalent(plan)

    def match_candidates(self, plan, ranker=None):
        return self.repository.match_candidates(plan, ranker=ranker)

    def match_candidates_batch(self, plans, ranker=None):
        return self.repository.match_candidates_batch(plans, ranker=ranker)

    def insert(self, entry):
        return self.repository.insert(entry)

    def remove(self, entry, dfs=None):
        return self.repository.remove(entry, dfs=dfs)

    def record_use(self, entry, tick):
        return self.repository.record_use(entry, tick)

    def close(self):
        if self._closed:
            return
        self._closed = True
        if self.persistence is not None:
            self.persistence.flush()
        self.repository.close()

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc_value, traceback):
        self.close()
        return False

    def describe(self):
        return (f"RepositoryService[{len(self.repository)} entr(ies)]: "
                f"{self.pool.describe()}")
