"""Async ingest front-end: enqueue registrations, drain in batches.

The paper registers every kept output *inline* on the job-submission
path (Section 6.2): fingerprinting, index insertion and Rule 3/4
eviction all sit directly in the client's latency. This module splits
that work into the telemetry-server shape the ROADMAP's "millions of
users" north star asks for — the submit path only *captures* what a
registration needs and enqueues it; a background registrar thread
*applies* it against the repository in batches.

The split is the parity argument. Registration is factored into two
halves that inline and async mode share verbatim:

* **capture** (submit thread) — :class:`RegistrationRecord` snapshots
  the plan subtree, output path and the execution statistics that the
  old inline code read at registration time (file size, clock tick),
  so applying later cannot observe a different world;
* **apply** (wherever) — ``record.apply(sink, batch)`` calls back into
  the manager's ``apply_register`` / ``apply_discard`` /
  ``apply_submit_end``, the *single* implementation both modes run.
  Inline mode applies each record immediately on the caller's thread;
  async mode applies the identical records on the registrar thread.
  Decisions are bit-identical by construction, which the lock-step
  property suite then verifies against the frozen seed.

Ordering: one FIFO queue carries registrations, discards and
submit-end markers, so the repository's change-event channel — and
therefore the :class:`~repro.restore.wal.RepositoryLog` and the worker
pool's mutation buffers — sees the same record stream as inline mode,
just later. A single re-entrant lock (``facade.lock``) serializes
registrar batches against the submit path's match probes, so a probe
never observes a half-applied batch.

Worker-owned durability changes *where* a registrar batch's change
records land, not *when*: they stay buffered in the log until the next
``flush``/``checkpoint``, which routes each partition's records to its
owning worker as one combined message with the pool's still-buffered
mutations (no second front-end pass over the batch). Flushing per batch
instead would change the durability cadence between inline and async
mode and break the property suite's checkpoint-report parity — the
cadence is the log's, never the registrar's.

Backpressure is explicit (:class:`IngestQueue`): ``block`` (wait for
room — exact inline parity), ``reject`` (drop the registration, report
it, and discard its materialized file so nothing leaks), or
``coalesce`` (a registration whose frontier fingerprint is already
queued is absorbed into the queued survivor and follows its outcome).
"""

import threading
import time
from collections import deque

from repro.restore.index import operator_fingerprint
from repro.restore.stats import IngestStats


class FrozenClock:
    """A logical clock pinned at one tick.

    The submit path captures ``clock.now()`` into the
    :class:`SubmitEndRecord`; the eviction sweep later replays against
    this frozen view, so Rule 3 reuse windows evaluate exactly as they
    would have inline — even if more submits ticked the real clock
    while the record sat in the queue.
    """

    __slots__ = ("_tick",)

    def __init__(self, tick):
        self._tick = tick

    def now(self):
        return self._tick


class RegistrationRecord:
    """One deferred registration, captured on the submit path.

    Carries everything ``ReStore._build_entry`` used to read at
    registration time: the (uncloned) frontier operator plus the plan
    that owns it, the output path, and the execution statistics —
    including ``output_bytes`` and ``created_tick``, which *must* be
    captured at enqueue time because the file may be discarded and the
    clock advanced before the registrar gets to the record.
    """

    __slots__ = ("job_plan", "frontier_op", "output_path", "owns_file",
                 "origin", "report", "input_bytes", "output_bytes",
                 "producing_job_time", "map_time", "reduce_time",
                 "created_tick", "absorbed", "enqueued_at", "_fingerprint")

    #: registrations participate in duplicate-fingerprint coalescing
    coalescable = True
    is_barrier = False

    def __init__(self, job_plan, frontier_op, output_path, owns_file, origin,
                 report, input_bytes, output_bytes, producing_job_time,
                 map_time, reduce_time, created_tick):
        self.job_plan = job_plan
        self.frontier_op = frontier_op
        self.output_path = output_path
        self.owns_file = owns_file
        self.origin = origin
        self.report = report
        self.input_bytes = input_bytes
        self.output_bytes = output_bytes
        self.producing_job_time = producing_job_time
        self.map_time = map_time
        self.reduce_time = reduce_time
        self.created_tick = created_tick
        #: records this one swallowed under the ``coalesce`` policy;
        #: they follow this record's outcome when it applies
        self.absorbed = []
        self.enqueued_at = None
        self._fingerprint = None

    def ensure_fingerprint(self):
        """The frontier subtree's structural fingerprint, lazily.

        Computed on the *uncloned* operator —
        :func:`~repro.restore.index.operator_fingerprint` never hashes
        the Store, so this equals the fingerprint of the entry plan the
        apply side will clone, without cloning on the hot path.
        """
        if self._fingerprint is None:
            self._fingerprint = operator_fingerprint(self.frontier_op)
        return self._fingerprint

    def apply(self, sink, batch):
        sink.apply_register(self, batch)


class DiscardRecord:
    """Materialized paths to delete (injected stores that executed but
    will never be registered — the PR 4 orphan-file fix, async form)."""

    __slots__ = ("paths",)

    coalescable = False
    is_barrier = False

    def __init__(self, paths):
        self.paths = list(paths)

    def apply(self, sink, batch):
        sink.apply_discard(self)


class SubmitEndRecord:
    """End-of-submit marker: queued discards, the eviction sweep at the
    captured tick, and (when due) the persistence checkpoint."""

    __slots__ = ("report", "tick", "discard_paths", "checkpoint_due")

    coalescable = False
    is_barrier = False

    def __init__(self, report, tick, discard_paths, checkpoint_due):
        self.report = report
        self.tick = tick
        self.discard_paths = list(discard_paths)
        self.checkpoint_due = checkpoint_due

    def apply(self, sink, batch):
        sink.apply_submit_end(self)
        if batch:
            # The sweep may have evicted entries admitted earlier in
            # this batch; the coalescing map must not hand out a
            # removed entry as a duplicate target.
            batch.clear()


class BarrierRecord:
    """Releases its event when the registrar reaches it. Barriers are
    released even when an earlier record errored, so ``flush()`` never
    hangs on a poisoned queue."""

    __slots__ = ("event",)

    coalescable = False
    is_barrier = True

    def __init__(self, event):
        self.event = event

    def apply(self, sink, batch):
        self.event.set()


class IngestQueue:
    """Bounded FIFO of ingest records with an explicit backpressure policy.

    * ``block`` — ``put`` waits for room; submit latency degrades but
      nothing is lost (exact inline parity);
    * ``reject`` — a full queue refuses the registration (``put``
      returns False; the caller reports it and discards its file);
    * ``coalesce`` — a registration whose frontier fingerprint is
      already queued is absorbed into the queued survivor regardless of
      capacity; distinct fingerprints block as under ``block``.

    Control records (discards, submit-end markers, barriers) enter via
    :meth:`put_control`: they bypass capacity and are never rejected or
    coalesced — dropping one would lose files or a whole sweep.
    """

    POLICIES = ("block", "reject", "coalesce")

    #: Locking contract, enforced by `repro.tools.statlint` (rule
    #: ``lock-discipline``): these fields are only touched inside
    #: ``with self._lock:`` — the queue is shared by every submit
    #: thread and the registrar. ``stats`` counters on the queue side
    #: (enqueued/rejected/coalesced/depth) are part of the same
    #: critical sections; see `IngestStats` for the field partition.
    GUARDED_BY = {"_records": "_lock", "_queued_by_fp": "_lock",
                  "_closed": "_lock", "stats": "_lock"}

    def __init__(self, capacity=1024, policy="block", stats=None):
        if policy not in self.POLICIES:
            raise ValueError(f"unknown ingest policy {policy!r}; "
                             f"expected one of {self.POLICIES}")
        self.capacity = max(1, int(capacity))
        self.policy = policy
        self.stats = stats if stats is not None else IngestStats()
        self._records = deque()
        self._lock = threading.Lock()
        self._not_full = threading.Condition(self._lock)
        self._not_empty = threading.Condition(self._lock)
        self._queued_by_fp = {}  # fingerprint -> queued survivor (coalesce)
        self._closed = False

    def __len__(self):
        with self._lock:
            return len(self._records)

    def put(self, record):
        """Enqueue a registration; returns False iff rejected."""
        with self._lock:
            if self._closed:
                raise RuntimeError("ingest queue is closed")
            if self.policy == "coalesce" and record.coalescable:
                survivor = self._queued_by_fp.get(record.ensure_fingerprint())
                if survivor is not None:
                    survivor.absorbed.append(record)
                    self.stats.coalesced += 1
                    return True
            while len(self._records) >= self.capacity:
                if self.policy == "reject":
                    self.stats.rejected += 1
                    return False
                self._not_full.wait()
                if self._closed:
                    raise RuntimeError("ingest queue is closed")
            self._append_locked(record)
            return True

    def put_control(self, record):
        """Enqueue a control record: no capacity check, never rejected."""
        with self._lock:
            if self._closed and not record.is_barrier:
                raise RuntimeError("ingest queue is closed")
            self._append_locked(record)

    def _append_locked(self, record):
        if record.coalescable:
            record.enqueued_at = time.monotonic()
            self.stats.enqueued += 1
            if self.policy == "coalesce":
                self._queued_by_fp[record.ensure_fingerprint()] = record
        self._records.append(record)
        self.stats.record_depth(len(self._records))
        self._not_empty.notify()

    def take_batch(self, max_records, timeout):
        """Pop up to ``max_records`` records FIFO; waits up to
        ``timeout`` seconds for the first one. A popped survivor leaves
        the coalescing map — later duplicates must re-queue, not be
        absorbed into a record already being applied."""
        with self._lock:
            if not self._records:
                self._not_empty.wait(timeout)
            batch = []
            while self._records and len(batch) < max_records:
                record = self._records.popleft()
                if record.coalescable and self.policy == "coalesce":
                    fingerprint = record.ensure_fingerprint()
                    if self._queued_by_fp.get(fingerprint) is record:
                        del self._queued_by_fp[fingerprint]
                batch.append(record)
            if batch:
                self._not_full.notify_all()
            return batch

    def close(self):
        """Refuse further puts and wake every waiter."""
        with self._lock:
            self._closed = True
            self._not_full.notify_all()
            self._not_empty.notify_all()


class Registrar:
    """Background drainer: applies queued records in batches.

    Every batch is applied under ``lock`` — the same lock the submit
    path holds while probing the repository — so matches never observe
    a half-applied batch, and all repository/worker-pool mutation stays
    serialized (process workers are fork-spawned; two threads must not
    race a spawn). After each batch the sink's ``after_batch`` hook
    runs (still under the lock): the manager uses it to flush the
    worker pool's per-shard mutation buffers, shipping one grouped
    ``apply`` message per touched shard instead of paying the
    serialization on some later probe.

    An exception raised by a record poisons the registrar: remaining
    non-barrier records are abandoned (their state can depend on the
    failed one), barriers still release, and the error re-raises on the
    next ``flush()``/``close()``. ``KeyboardInterrupt``/``SystemExit``
    additionally re-raise on this thread — an interrupt must stop the
    drain loop, not be captured into a variable — so they both
    terminate the registrar and propagate out of the caller's
    ``flush()``.
    """

    #: `repro.tools.statlint` (``lock-discipline``): the poison slot is
    #: written by the registrar thread and consumed by whichever thread
    #: calls flush()/close(); registrar-side stats counters are updated
    #: under the same ingest lock that serializes batches.
    GUARDED_BY = {"_error": "lock", "stats": "lock"}

    def __init__(self, queue, sink, lock, batch_size=32, poll_interval=0.05):
        self.queue = queue
        self.sink = sink
        self.lock = lock
        self.batch_size = max(1, int(batch_size))
        self.poll_interval = poll_interval
        self.stats = queue.stats
        self._stop = threading.Event()
        self._gate = threading.Event()  # cleared = paused (tests)
        self._gate.set()
        self._error = None
        self._thread = threading.Thread(target=self._run,
                                        name="restore-registrar", daemon=True)
        self._thread.start()

    # Test hooks ---------------------------------------------------------

    def pause(self):
        """Stop draining after the current batch (deterministic tests:
        enqueue while paused, observe, resume). ``flush()`` while paused
        would wait forever — resume first."""
        self._gate.clear()

    def resume(self):
        self._gate.set()

    @property
    def alive(self):
        return self._thread.is_alive()

    # Drain loop ---------------------------------------------------------

    def _run(self):
        try:
            while True:
                self._gate.wait()
                batch = self.queue.take_batch(self.batch_size,
                                              self.poll_interval)
                if not batch:
                    if self._stop.is_set():
                        return
                    continue
                self._apply_batch(batch)
        except (KeyboardInterrupt, SystemExit):
            # Already recorded as the poison by _apply_batch; exit the
            # thread without the default unraisable-traceback noise.
            # flush()/close() re-raise it on the caller.
            return

    def _apply_batch(self, batch):
        with self.lock:
            context = {}
            applied_any = False
            for position, record in enumerate(batch):
                if record.is_barrier:
                    record.event.set()
                    continue
                if self._error is not None:
                    continue  # poisoned: abandon dependent records
                started = time.monotonic()
                try:
                    record.apply(self.sink, context)
                except (KeyboardInterrupt, SystemExit) as exc:
                    # An interrupt both poisons (so flush()/close()
                    # re-raise it on the caller) and re-raises here (so
                    # it actually stops this thread). Release the
                    # batch's remaining barriers first — nothing will
                    # drain them once the thread is gone.
                    self._error = exc
                    for later in batch[position + 1:]:
                        if later.is_barrier:
                            later.event.set()
                    raise
                except BaseException as exc:  # statlint: disable=exception-hygiene -- poisoning contract: the error is re-surfaced on the caller by the next flush()/close(), and interrupts re-raise above
                    self._error = exc
                    continue
                if record.coalescable:
                    self.stats.record_drain(started - record.enqueued_at)
                    self.stats.applied += 1 + len(record.absorbed)
                applied_any = True
            if applied_any and self._error is None:
                self.stats.batches += 1
                after_batch = getattr(self.sink, "after_batch", None)
                if after_batch is not None:
                    try:
                        after_batch()
                    except (KeyboardInterrupt, SystemExit) as exc:
                        self._error = exc
                        raise
                    except BaseException as exc:  # statlint: disable=exception-hygiene -- poisoning contract: re-surfaced on the caller by the next flush()/close()
                        self._error = exc

    # Barriers -----------------------------------------------------------

    def flush(self):
        """Block until every record enqueued before this call has been
        applied, then re-raise any registrar error."""
        if self._thread.is_alive():
            event = threading.Event()
            self.queue.put_control(BarrierRecord(event))
            # An interrupted registrar (KeyboardInterrupt/SystemExit)
            # dies without draining this barrier; poll liveness so the
            # recorded error still surfaces instead of waiting forever.
            while not event.wait(0.05):
                if not self._thread.is_alive():
                    break
        self._raise_error()

    def close(self):
        """Drain, stop the thread, close the queue. Idempotent."""
        if self._thread.is_alive():
            try:
                self.flush()
            finally:
                self._stop.set()
                self._gate.set()
                self.queue.close()
                self._thread.join()
        else:
            self._raise_error()

    def _raise_error(self):
        with self.lock:
            if self._error is not None:
                error, self._error = self._error, None
                raise error


class InlineIngest:
    """The seed's inline semantics behind the ingest interface: every
    record applies immediately on the caller's thread, discards ride
    the manager's per-submit list exactly as before. ``stats`` is None
    — there is no queue to instrument."""

    mode = "inline"
    stats = None

    def __init__(self, sink):
        self.sink = sink
        self.lock = threading.RLock()

    def submit(self, record):
        with self.lock:
            record.apply(self.sink, None)

    def submit_discards(self, paths):
        # Same timing as the seed: queued on the submit thread, deleted
        # by the submit-end sweep.
        self.sink.queue_discard_path(*paths)

    def submit_end(self, record):
        with self.lock:
            record.apply(self.sink, None)

    def discard_path(self, path):
        self.sink.queue_discard_path(path)

    def flush(self):
        return None

    def close(self):
        return None


class AsyncIngest:
    """Queue + registrar behind the same interface: ``submit*`` only
    enqueue; ``flush()``/``close()`` drain with a barrier so reads
    after them are deterministic."""

    mode = "async"

    def __init__(self, sink, capacity=1024, policy="block", batch_size=32,
                 poll_interval=0.05):
        self.sink = sink
        self.lock = threading.RLock()
        self.queue = IngestQueue(capacity=capacity, policy=policy)
        self.stats = self.queue.stats
        self.registrar = Registrar(self.queue, sink, self.lock,
                                   batch_size=batch_size,
                                   poll_interval=poll_interval)

    def submit(self, record):
        if not self.queue.put(record):
            self.sink.registration_rejected(record)

    def submit_discards(self, paths):
        self.queue.put_control(DiscardRecord(paths))

    def submit_end(self, record):
        self.queue.put_control(record)

    def discard_path(self, path):
        # Called on the registrar thread (under the lock) after an
        # apply-side decision — the submit-end record for this path's
        # submit may already be applied, so delete now instead of
        # queueing: materialized/temp paths are never reallocated, and
        # the shield set still protects re-registrations.
        self.sink.discard_path_now(path)

    def flush(self):
        self.registrar.flush()

    def close(self):
        self.registrar.close()
