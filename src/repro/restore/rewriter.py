"""Plan rewriting: make an input job consume stored outputs.

Given a containment match, the matched part of the input plan is replaced
with a Load of the stored output (paper Section 3): every consumer of the
frontier operator is rewired onto the new Load, which makes the matched
region unreachable from the plan's sinks (physical plans are sink-rooted,
so no explicit deletion is needed). Stages and the job's shuffle operator
are then recomputed — a job whose blocking operator was matched away
degenerates into a map-only job.
"""

from repro.common.errors import PlanError
from repro.physical.operators import MAP_STAGE, POLoad, REDUCE_STAGE


def apply_rewrite(job, match, entry, dfs):
    """Rewrite ``job``'s plan to read ``entry``'s stored output.

    Returns the new Load operator.
    """
    frontier = match.frontier
    version = dfs.status(entry.output_path).version if dfs.exists(entry.output_path) else 0
    new_load = POLoad(entry.output_path, frontier.schema, version,
                      alias=frontier.alias)
    new_load.stage = MAP_STAGE
    consumers = job.plan.successors_of(frontier)
    if not consumers:
        raise PlanError("match frontier has no consumers; nothing to rewrite")
    for consumer in consumers:
        job.plan.replace_input(consumer, frontier, new_load)
    restamp_stages(job)
    return new_load


def restamp_stages(job):
    """Recompute stages and the shuffle operator after plan surgery."""
    operators = job.plan.operators()
    blocking = [op for op in operators if op.is_blocking]
    if len(blocking) > 1:
        raise PlanError(
            f"job {job.job_id} has {len(blocking)} blocking operators after "
            "rewriting; plans must keep at most one"
        )
    job.shuffle_op = blocking[0] if blocking else None
    for op in operators:
        if op.is_blocking:
            op.stage = REDUCE_STAGE
        elif not op.inputs:
            op.stage = MAP_STAGE
        else:
            op.stage = (
                REDUCE_STAGE
                if any(parent.stage == REDUCE_STAGE for parent in op.inputs)
                else MAP_STAGE
            )


def skip_splits(op):
    while op.kind == "split":
        op = op.inputs[0]
    return op


def classify_copy_stores(job):
    """Stores whose input degenerated to a bare Load after rewriting.

    Returns (removable, kept_copy) lists of (store, load) pairs:

    * a *temporary* copy store is removable — downstream jobs can read the
      stored output directly (whole-job reuse);
    * a final store whose path equals the load's path is removable — the
      user output already exists (a re-submitted query fully matched);
    * a final store with a different path must stay: the job becomes a
      cheap Load -> Store copy that produces the user's output file.
    """
    removable = []
    kept_copy = []
    for store in job.plan.stores():
        source = skip_splits(store.inputs[0])
        if not isinstance(source, POLoad):
            continue
        if store.temporary or source.path == store.path:
            removable.append((store, source))
        else:
            kept_copy.append((store, source))
    return removable, kept_copy
