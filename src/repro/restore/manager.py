"""The ReStore manager: Section 6.2's extension of the JobControl loop.

For every job that becomes ready, in order:

1. stamp the versions of the datasets its Loads read,
2. **match & rewrite** against the repository (repeating the sequential
   scan after every successful rewrite, paper Section 3),
3. simplify: stores whose input degenerated to a bare Load are removed
   (whole-job reuse — dependents are rewired onto the stored output;
   final user outputs become cheap copy jobs),
4. **enumerate sub-jobs** and inject Split+Store per the heuristic,
5. execute; afterwards register the job's outputs and the materialized
   sub-jobs in the repository with their execution statistics, subject to
   the retention policy's admission rules.

One logical-clock tick per submitted workflow drives reuse windows.
"""

import itertools

from repro.common import LogicalClock
from repro.mrcompiler.jobcontrol import JobControl
from repro.physical.operators import POLoad, POStore
from repro.physical.plan import PhysicalPlan
from repro.restore.enumerator import enumerate_and_inject
from repro.restore.heuristics import AggressiveHeuristic
from repro.restore.ingest import (
    AsyncIngest,
    FrozenClock,
    InlineIngest,
    RegistrationRecord,
    SubmitEndRecord,
)
from repro.restore.matcher import find_containment
from repro.restore.ranking import (
    estimate_entry_savings,
    realized_entry_savings,
    resolve_ranker,
)
from repro.restore.repository import Repository, RepositoryEntry
from repro.restore.rewriter import apply_rewrite, classify_copy_stores, restamp_stages
from repro.restore.selector import KeepEverythingPolicy
from repro.restore.stats import EntryStats, MatchCounters, RankingLedger


class ReStoreReport:
    """What ReStore did while executing one workflow.

    Besides the decision lists (rewrites, eliminations, registrations,
    evictions), the report carries :class:`~repro.restore.stats.MatchCounters`
    explaining why candidate entries offered by ``match_candidates`` were
    *not* used — a candidate can survive the load-index / shard-merge
    filter and still be skipped because its stored file is gone from the
    DFS or because the exact containment test (paper Section 3) fails.
    """

    def __init__(self, workflow_name, ranker_name="structural"):
        self.workflow_name = workflow_name
        self.rewrites = []            # (job_id, entry_id)
        self.eliminated_jobs = []     # job_ids fully served from the repository
        self.injected_stores = []     # (job_id, operator_kind, path)
        self.registered_entries = []  # entry ids added this run
        self.rejected_candidates = [] # paths rejected by the retention policy
        self.evicted_entries = []     # entry ids removed by the sweep
        self.checkpoint = None        # persistence checkpoint outcome, if any
        self.ingest = None            # IngestStats when the manager is async
        self.match_counters = MatchCounters()  # why candidates were skipped
        #: per-rewrite estimated vs realized savings (estimator error)
        self.ranking = RankingLedger(ranker_name)

    @property
    def num_rewrites(self):
        return len(self.rewrites)

    def describe(self):
        return (
            f"ReStore[{self.workflow_name}]: {self.num_rewrites} rewrite(s), "
            f"{len(self.eliminated_jobs)} job(s) eliminated, "
            f"{len(self.injected_stores)} store(s) injected, "
            f"{len(self.registered_entries)} entr(ies) registered, "
            f"{len(self.evicted_entries)} evicted; "
            f"matcher: {self.match_counters.describe()}; "
            f"{self.ranking.describe()}"
        )


class ReStore(JobControl):
    """ReStore on top of the MapReduce engine.

    Parameters mirror the system's knobs:

    * ``repository`` — where stored outputs live: the indexed
      :class:`~repro.restore.repository.Repository` by default, or a
      :class:`~repro.restore.sharding.ShardedRepository` for partitioned
      matching (the manager is repository-agnostic — every decision is
      identical either way, only the probe cost changes);
    * ``heuristic`` — sub-job selection (:class:`AggressiveHeuristic` is
      the paper's default, Section 4); pass None to disable sub-job
      materialization;
    * ``retention`` — admission/eviction policy (paper default stores
      everything; :class:`~repro.restore.selector.HeuristicRetentionPolicy`
      implements Section 5's Rules 1-4);
    * ``ranker`` — candidate try-order for the matcher: None or
      ``"structural"`` for the paper's Section 3 priority order (the
      default, bit-identical to the seed), ``"savings"`` for
      :class:`~repro.restore.ranking.SavingsRanker` (best
      cost-model-estimated savings first, subsumption still a hard
      constraint), or any :class:`~repro.restore.ranking.CandidateRanker`
      instance (the manager binds its cost model). A non-structural
      ranker needs a ranking-capable repository (the indexed or sharded
      one — not the frozen seed baseline);
    * ``enable_rewrite`` / ``enable_registration`` — turn the matcher or
      the repository population off (used by the experiments to measure
      overhead and no-reuse baselines);
    * ``persistence`` — a :class:`~repro.restore.wal.RepositoryLog` to
      keep the repository durable incrementally (or ``True`` for a
      default-configured one on this manager's DFS): the manager
      attaches it and, every ``checkpoint_every`` submits, appends the
      accumulated change records (inserts, eviction removals,
      use-stamps) to the per-shard segment files — or compacts the
      partitions whose segments outgrew their ratio threshold
      (dirty-only: clean shards' snapshot sections are reused on disk).
      The checkpoint outcome, including which shards were compacted,
      lands on ``last_report.checkpoint``. None (the default) leaves
      persistence to explicit ``save_repository`` calls;
    * ``ingest`` — ``"inline"`` (the default: registrations, discards
      and the eviction sweep apply on the submit thread, exactly the
      seed's timing) or ``"async"`` (the submit path only enqueues;
      a background :class:`~repro.restore.ingest.Registrar` drains in
      batches off the hot path — call :meth:`flush` before reading the
      repository deterministically). ``ingest_queue_size`` bounds the
      queue, ``ingest_policy`` picks the backpressure behavior when it
      fills (``"block"`` / ``"reject"`` / ``"coalesce"`` — see
      :class:`~repro.restore.ingest.IngestQueue`), and
      ``ingest_batch_size`` caps records per registrar batch. Async
      reports carry :class:`~repro.restore.stats.IngestStats` as
      ``last_report.ingest``.
    """

    MATERIALIZED_PREFIX = "/restore/materialized"

    #: Locking contract, enforced by `repro.tools.statlint`
    #: (``lock-discipline``): the discard shield is read/written by the
    #: registrar thread (apply hooks) and by the submit thread, always
    #: under the ingest lock. The apply hooks themselves carry
    #: ``# statlint: holds=_ingest.lock`` — the registrar/InlineIngest
    #: acquire the lock before invoking them.
    GUARDED_BY = {"_kept_paths": "_ingest.lock"}

    #: sentinel: "use the paper's default heuristic" (None disables sub-jobs)
    _DEFAULT = object()

    _instance_ids = itertools.count(1)

    def __init__(self, dfs, cost_model, repository=None, heuristic=_DEFAULT,
                 retention=None, clock=None, enable_rewrite=True,
                 enable_registration=True, register_whole_jobs=True,
                 register_final_outputs=True, ranker=None, persistence=None,
                 checkpoint_every=1, ingest="inline", ingest_queue_size=1024,
                 ingest_policy="block", ingest_batch_size=32):
        super().__init__(dfs, cost_model, keep_temps=True)
        self.repository = repository if repository is not None else Repository()
        self.heuristic = AggressiveHeuristic() if heuristic is self._DEFAULT else heuristic
        self.retention = retention or KeepEverythingPolicy()
        self.ranker = resolve_ranker(ranker, cost_model)
        self.clock = clock or LogicalClock()
        self.enable_rewrite = enable_rewrite
        self.enable_registration = enable_registration
        if persistence is True:
            # Knob convenience: a default segmented RepositoryLog on
            # this manager's DFS (manifest + per-shard sections and
            # segments under /restore/repository.jsonl*).
            from repro.restore.wal import RepositoryLog
            persistence = RepositoryLog(dfs)
        self.persistence = persistence
        if persistence is not None:
            if persistence.ranker is None:
                # Snapshots written by managed persistence carry the same
                # deployment metadata save_repository(..., ranker=) would
                # record; set before attach — it may compact immediately.
                persistence.ranker = self.ranker
            persistence.attach(self.repository)
        self.checkpoint_every = max(1, int(checkpoint_every))
        self._submits_since_checkpoint = 0
        #: register outputs of whole jobs (intermediate temps and, when
        #: ``register_final_outputs`` also holds, user-facing outputs)
        self.register_whole_jobs = register_whole_jobs
        self.register_final_outputs = register_final_outputs
        self.last_report = None
        # Each manager materializes under its own directory so that several
        # ReStore instances sharing one DFS never overwrite each other.
        self._mat_prefix = f"{self.MATERIALIZED_PREFIX}/r{next(self._instance_ids)}"
        self._mat_counter = itertools.count(1)
        self._pending_candidates = {}
        self._kept_paths = set()
        self._discard_paths = []
        if ingest == "async":
            self._ingest = AsyncIngest(self, capacity=ingest_queue_size,
                                       policy=ingest_policy,
                                       batch_size=ingest_batch_size)
        elif ingest == "inline":
            self._ingest = InlineIngest(self)
        else:
            raise ValueError(
                f"unknown ingest mode {ingest!r}; expected 'inline' or 'async'")
        self.ingest_mode = self._ingest.mode

    # Public API ------------------------------------------------------------

    def submit(self, workflow):
        """Execute ``workflow`` with reuse; returns the WorkflowResult.

        Runs the Section 6.2 loop for every job (match & rewrite →
        simplify → enumerate sub-jobs → execute → register), then the
        retention policy's eviction sweep (Section 5, Rules 3-4).
        ``self.last_report`` describes the rewrites, eliminations,
        registrations, evictions, and the matcher's skip accounting for
        this workflow; one logical-clock tick per submit drives reuse
        windows.

        Under ``ingest="async"`` the registrations, queued discards,
        eviction sweep and checkpoint are *enqueued* — this method
        returns as soon as the jobs have executed, and the report's
        registration/eviction lists fill in as the registrar drains.
        Call :meth:`flush` for a read-after-drain barrier.
        """
        self.clock.tick()
        self.last_report = ReStoreReport(workflow.name, self.ranker.name)
        self.last_report.ingest = self._ingest.stats
        self._discard_paths = []
        result = self.run(workflow)
        checkpoint_due = False
        if self.persistence is not None:
            self._submits_since_checkpoint += 1
            if self._submits_since_checkpoint >= self.checkpoint_every:
                checkpoint_due = True
                self._submits_since_checkpoint = 0
        discards, self._discard_paths = self._discard_paths, []
        self._ingest.submit_end(SubmitEndRecord(
            self.last_report, self.clock.now(), discards, checkpoint_due))
        return result

    def flush(self):
        """Drain the ingest queue: returns once every record enqueued
        before this call has been applied, so repository reads are
        deterministic. Re-raises any error the registrar hit. Inline
        managers apply everything synchronously — a no-op there."""
        self._ingest.flush()

    def close(self):
        """Shut the manager down cleanly: drain and stop the async
        registrar (pending registrations are applied, not dropped),
        flush the attached :class:`~repro.restore.wal.RepositoryLog`'s
        pending change records to their segments, then release the
        repository's resources (probe thread pool or shard worker
        processes).

        Without this, records buffered since the last checkpoint are
        silently lost on shutdown and a threaded/process executor leaks.
        Idempotent, and also reachable as a context manager::

            with ReStore(dfs, cost_model, ...) as manager:
                manager.submit(workflow)
        """
        try:
            self._ingest.close()
        finally:
            # A registrar error must not leak the log's pending records
            # or the repository's worker processes.
            if self.persistence is not None:
                self.persistence.flush()
            close = getattr(self.repository, "close", None)
            if close is not None:
                close()

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc_value, traceback):
        self.close()
        return False

    # JobControl hooks ---------------------------------------------------------

    def prepare_job(self, job, workflow, result):
        self._stamp_load_versions(job)
        if self.enable_rewrite:
            self._match_and_rewrite(job)
        if not self._simplify(job, workflow):
            return False
        if self.heuristic is not None:
            candidates = enumerate_and_inject(job, self.heuristic,
                                              self._allocate_materialized_path)
            self._pending_candidates[job.job_id] = candidates
            self.last_report.injected_stores.extend(
                (job.job_id, candidate.operator.kind, candidate.path)
                for candidate in candidates
            )
        return True

    def after_job(self, job, run_result, executed):
        if not executed or not self.enable_registration:
            # The injected stores already executed and materialized
            # their files; nothing will ever register (and so own)
            # them, so they must be queued for discard or they
            # accumulate under /restore/materialized forever. One
            # submission, through the facade: inline rides the
            # per-submit discard list as before, async enqueues a
            # single DiscardRecord — never both, or the paths would be
            # deleted once per route (harmless today, a double-free the
            # moment discard becomes stateful).
            paths = [candidate.path for candidate in
                     self._pending_candidates.pop(job.job_id, ())]
            if paths:
                self._ingest.submit_discards(paths)
            return
        for store in job.plan.stores():
            if store.injected:
                continue
            if not self.register_whole_jobs:
                continue
            if not store.temporary and not self.register_final_outputs:
                continue
            self._register_store(job, store, run_result)
        for candidate in self._pending_candidates.pop(job.job_id, []):
            self._register_candidate(job, candidate, run_result)

    # Matching & rewriting -------------------------------------------------------

    def _stamp_load_versions(self, job):
        for load in job.loads():
            if self.dfs.exists(load.path):
                load.version = self.dfs.status(load.path).version

    def _match_and_rewrite(self, job):
        """Scan the repository; rewrite on the first match; rescan until
        no plan matches (paper Section 3).

        Each pass asks the repository for its match candidates — entries
        the leaf-load index (and, for a sharded repository, the shard
        fan-out merge) cannot rule out, in scan order. Skipped entries
        provably cannot match (a containment maps every entry Load onto
        an identically-versioned job Load), so the first candidate that
        matches is exactly the entry the seed's full sequential scan
        would have chosen. The candidates are recomputed every pass
        because a rewrite changes the job's load set.

        Every candidate the filter let through is accounted for in the
        report's :class:`~repro.restore.stats.MatchCounters`: matched,
        skipped because its stored output no longer exists, or skipped
        because the exact containment test rejected it after the
        candidate merge.
        """
        counters = self.last_report.match_counters
        record_hit = getattr(self.repository, "record_match_hit", None)
        # Use-stamps go through the repository's change-event channel so
        # an attached RepositoryLog persists them (Rule 3 reuse windows
        # survive a restart); the frozen seed baseline has no channel and
        # gets the direct stamp.
        record_use = getattr(self.repository, "record_use", None)
        # The ingest lock keeps the whole match pass atomic against the
        # async registrar's batches: a probe never sees a half-applied
        # batch, and use-stamps/worker-pool traffic stays serialized
        # (uncontended re-entrant acquire in inline mode).
        with self._ingest.lock:
            progressed = True
            while progressed:
                progressed = False
                for entry in self._match_candidates(job):
                    counters.candidates_tried += 1
                    if not self.dfs.exists(entry.output_path):
                        counters.skipped_missing_output += 1
                        continue
                    match = find_containment(entry.plan, job.plan)
                    if match is None:
                        counters.skipped_no_containment += 1
                        continue
                    self._record_ranking_decision(job, entry)
                    apply_rewrite(job, match, entry, self.dfs)
                    if record_use is not None:
                        record_use(entry, self.clock.now())
                    else:
                        entry.stats.record_use(self.clock.now())
                    counters.matched += 1
                    if record_hit is not None:
                        record_hit(entry)
                    self.last_report.rewrites.append((job.job_id, entry.entry_id))
                    progressed = True
                    break

    def _record_ranking_decision(self, job, entry):
        """Ledger one applied rewrite's estimated vs realized savings.

        The estimate comes from the active ranker when it has one (so
        the ledger logs exactly the number the ranker ranked by, even
        when the ranker was constructed over a different cost model);
        rankers that do not estimate — the structural default — get the
        same accounting from the manager's cost model. Realized savings
        re-evaluate against the same model, so the estimated-vs-realized
        delta isolates estimator error, not model disagreement.
        """
        estimated = self.ranker.estimated_savings(entry)
        model = getattr(self.ranker, "cost_model", None) or self.cost_model
        if estimated is None:
            estimated = estimate_entry_savings(entry, model)
        self.last_report.ranking.record(
            job.job_id, entry.entry_id, estimated,
            realized_entry_savings(entry, model, self.dfs))

    def _match_candidates(self, job):
        """The repository's candidates for ``job``, in the ranker's
        try order.

        The structural default calls ``match_candidates(plan)`` exactly
        as the seed did — keeping that path signature-identical is what
        lets the lock-step property suite drive the frozen baseline
        repository (which accepts no ranker) through this manager.
        """
        if self.ranker.is_structural:
            return self.repository.match_candidates(job.plan)
        return self.repository.match_candidates(job.plan, ranker=self.ranker)

    def _simplify(self, job, workflow):
        """Drop copy stores; eliminate the job when nothing remains.

        Returns False when the job is fully served from stored outputs.
        """
        removable, _ = classify_copy_stores(job)
        if not removable:
            return True
        if len(removable) == len(job.plan.sinks):
            for store, load in removable:
                self._rewire_dependents(workflow, store.path, load.path)
            self.last_report.eliminated_jobs.append(job.job_id)
            return False
        for store, load in removable:
            job.plan.remove_sink(store)
            self._rewire_dependents(workflow, store.path, load.path)
        restamp_stages(job)
        return True

    def _rewire_dependents(self, workflow, old_path, new_path):
        """Point every load of ``old_path`` in the workflow at ``new_path``
        (versions are stamped when the reading job is prepared)."""
        for other in workflow.jobs:
            for load in other.loads():
                if load.path == old_path:
                    load.path = new_path

    # Registration --------------------------------------------------------------

    def _allocate_materialized_path(self):
        return f"{self._mat_prefix}/m{next(self._mat_counter)}"

    def _register_store(self, job, store, run_result):
        self._ingest.submit(self._capture_registration(
            job, store.inputs[0], store.path, run_result,
            owns_file=store.temporary, origin="whole-job"))

    def _register_candidate(self, job, candidate, run_result):
        self._ingest.submit(self._capture_registration(
            job, candidate.operator, candidate.path, run_result,
            owns_file=True, origin="sub-job"))

    def _capture_registration(self, job, frontier_op, output_path, run_result,
                              owns_file, origin):
        """Snapshot a registration on the submit path (capture half).

        Everything the old inline registration read at decision time is
        read *now* — file size, clock tick, execution statistics — so
        :meth:`apply_register` reaches the identical decision whether it
        runs immediately (inline) or later on the registrar thread.
        """
        return RegistrationRecord(
            job_plan=job.plan, frontier_op=frontier_op,
            output_path=output_path, owns_file=owns_file, origin=origin,
            report=self.last_report,
            input_bytes=run_result.stats.map_input_bytes,
            output_bytes=(self.dfs.file_size(output_path)
                          if self.dfs.exists(output_path) else 0),
            producing_job_time=run_result.execution_time,
            map_time=run_result.breakdown.t_load,
            reduce_time=run_result.breakdown.t_store,
            created_tick=self.clock.now(),
        )

    # Ingest sink (apply half) ---------------------------------------------------
    #
    # Both ingest modes run these — inline immediately on the submit
    # thread, async on the registrar thread under the ingest lock.

    def apply_register(self, record, batch):  # statlint: holds=_ingest.lock
        """Clone, dedup, admit-or-reject one captured registration.

        ``batch`` is the registrar's per-batch fingerprint map: a record
        structurally equivalent to an entry admitted *earlier in the
        same batch* short-circuits to the duplicate outcome without
        cloning — identical to what ``find_equivalent`` would decide,
        since that entry is the only equivalent one (had another existed
        beforehand, the earlier record would not have been admitted).
        """
        if batch is not None:
            twin = batch.get(record.ensure_fingerprint())
            if twin is not None:
                self._finish_duplicate(record, twin)
                return
        clone, _ = record.job_plan.clone_subgraph(record.frontier_op)
        if isinstance(clone, POLoad):
            # trivial Load->Store plans are never useful
            self._finish_trivial(record)
            return
        entry_plan = PhysicalPlan([POStore(clone, record.output_path)])
        existing = self.repository.find_equivalent(entry_plan)
        if existing is not None:
            self._finish_duplicate(record, existing)
            return
        stats = EntryStats(
            input_bytes=record.input_bytes,
            output_bytes=record.output_bytes,
            producing_job_time=record.producing_job_time,
            map_time=record.map_time,
            reduce_time=record.reduce_time,
            created_tick=record.created_tick,
        )
        versions = {load.path: load.version for load in entry_plan.loads()}
        entry = RepositoryEntry(entry_plan, record.output_path, stats,
                                input_versions=versions,
                                owns_file=record.owns_file,
                                origin=record.origin)
        if self.retention.should_keep(entry, self.cost_model):
            self.repository.insert(entry)
            self._kept_paths.add(record.output_path)
            record.report.registered_entries.append(entry.entry_id)
            if batch is not None:
                batch[record.ensure_fingerprint()] = entry
            for absorbed in record.absorbed:
                self._finish_duplicate(absorbed, entry)
        else:
            self._finish_rejected(record)

    def _finish_duplicate(self, record, existing):  # statlint: holds=_ingest.lock
        if existing.output_path == record.output_path:
            # A re-registration at the same content-addressed path:
            # the "duplicate" file IS the entry's stored file, so
            # shield it from any queued discard.
            self._kept_paths.add(record.output_path)
        if record.origin == "sub-job":
            # A duplicate at a *different* path references nothing — the
            # existing entry keeps its own file — so it must stay
            # discardable: shielding it would leak one orphan
            # materialized file (and one shield-set string) per
            # re-enumerated sub-plan, forever.
            self._ingest.discard_path(record.output_path)
        for absorbed in record.absorbed:
            self._finish_duplicate(absorbed, existing)

    def _finish_trivial(self, record):
        if record.origin == "sub-job":
            self._ingest.discard_path(record.output_path)
        for absorbed in record.absorbed:
            self._finish_trivial(absorbed)

    def _finish_rejected(self, record):
        record.report.rejected_candidates.append(record.output_path)
        if record.owns_file:
            self._ingest.discard_path(record.output_path)
        for absorbed in record.absorbed:
            self._finish_rejected(absorbed)

    def registration_rejected(self, record):
        """A full ``reject``-policy queue refused ``record`` (submit
        thread): account for it and make sure its file cannot leak.

        Taken under the ingest lock: the registrar appends to the same
        report's ``rejected_candidates`` (``_finish_rejected``) while it
        drains this submit's earlier records, and two unsynchronized
        ``list.append`` races can lose an element."""
        with self._ingest.lock:
            record.report.rejected_candidates.append(record.output_path)
            if record.owns_file:
                self._discard_paths.append(record.output_path)

    def apply_discard(self, record):
        for path in record.paths:
            self.discard_path_now(path)

    def apply_submit_end(self, record):  # statlint: holds=_ingest.lock
        """Queued discards, the Rule 3/4 sweep at the captured tick,
        and (when due) the persistence checkpoint — the seed's
        end-of-submit tail, shared by both ingest modes."""
        for path in record.discard_paths:
            if path not in self._kept_paths:
                self.dfs.delete_if_exists(path)
        evicted = self.retention.sweep(self.repository, self.dfs,
                                       FrozenClock(record.tick))
        record.report.evicted_entries.extend(
            entry.entry_id for entry in evicted)
        for entry in evicted:
            # An evicted entry's path must not keep shielding later
            # discards of the same location (and a long-running manager
            # must not accumulate paths forever).
            self._kept_paths.discard(entry.output_path)
        if record.checkpoint_due and self.persistence is not None:
            record.report.checkpoint = self.persistence.checkpoint()

    def queue_discard_path(self, *paths):
        """Inline discard route: ride this submit's discard list, exactly
        the seed's end-of-submit timing."""
        self._discard_paths.extend(paths)

    def discard_path_now(self, path):  # statlint: holds=_ingest.lock
        """Async discard route (registrar thread): this path's submit-end
        record may already be applied, so delete immediately — under the
        same shield the queued route honors."""
        if path not in self._kept_paths:
            self.dfs.delete_if_exists(path)

    def after_batch(self):
        """Register-batch epilogue (registrar thread, under the ingest
        lock): ship the worker pool's buffered per-shard mutations as one
        grouped ``apply`` per touched shard, instead of leaving them to
        serialize through some later probe."""
        pool = getattr(self.repository, "worker_pool", None)
        if pool is not None:
            pool.flush_shards()
