"""Candidate ranking: which repository entry should the matcher try first.

The paper orders the repository structurally (Section 3): plans that
subsume others come first, then higher input/output ratio, then longer
producing-job time. That order is a *proxy* for benefit — the entry the
scan finds first is assumed to be the one that saves the most work. With
the load index (PR 1) and the shard fan-out merge (PR 2) narrowing the
candidate set to a handful of entries per probe, re-ranking those few
candidates by *estimated savings* from the Equation-2 cost model becomes
affordable, the same move self-tuning materialized-view selectors make:
byte cost, not topology, predicts runtime.

Two rankers implement one protocol:

* :class:`StructuralRanker` — the paper's order, frozen as the default.
  Candidates are already produced in global scan order by
  ``match_candidates``; this ranker passes them through untouched, so
  the default path stays bit-identical to the seed.
* :class:`SavingsRanker` — scores each candidate by
  :func:`estimate_entry_savings` (the producing job's avoided
  startup + load + operator + shuffle cost, minus the cost of loading
  the materialized file, from the entry's recorded statistics) and tries
  best-savings-first. Subsumption (the paper's rule 1) stays a **hard
  constraint**: an entry is never tried after one it strictly contains,
  because the containing plan eliminates strictly more work whenever
  both match. Only rule 2's ratio/time metrics are replaced by the cost
  model; ties break on global scan rank, so the order is deterministic.

Keeping rule 1 is what makes the ranking *safe*: the property suite
(``tests/test_property_restore.py``) proves that a ``SavingsRanker``
manager's rewrites all still pass ``find_containment`` and that its
total simulated workflow cost never exceeds the structural run's on
randomized streams, and the ablation benchmark's ``ranking`` arm asserts
the same over a PigMix-style stream.

The estimators are module functions so the manager can record
*estimated vs realized* savings for every rewrite regardless of which
ranker chose it (:class:`~repro.restore.stats.RankingLedger` on the
report) — the estimator's error is an observable, not a leap of faith.
"""

import heapq

from repro.common.errors import RepositoryError


def _entry_savings(entry, cost_model, output_bytes):
    """Seconds saved by reusing ``entry`` when its stored file holds
    ``output_bytes``: the avoided producing cost minus the reload cost.

    Reusing the entry avoids re-running the producing sub-plan — its
    startup, input load, operator, and shuffle cost. The entry records
    the producing job's total time and its store component
    (``EntryStats.reduce_time`` holds the producer's Tstore), so for a
    whole-job entry the avoided cost is
    ``producing_job_time - reduce_time``: the stored file's write cost
    was paid by the producer and is not avoided by the consumer.

    A **sub-job** entry records the same whole-job time, but its plan is
    only a prefix of the producing job — claiming the full time would
    bias the ranking toward cheap prefixes of expensive jobs and inflate
    the ledger exactly where the estimator matters. Its avoided cost is
    therefore capped by the cost model's Equation-2 reconstruction of
    the prefix itself (:meth:`~repro.mapreduce.costmodel.CostModel.\
estimate_subplan_time` over the entry's operator kinds and recorded
    input bytes).

    In exchange the rewritten job pays Equation 2's Tload for the
    materialized file.
    """
    stats = entry.stats
    avoided = max(0.0, stats.producing_job_time - stats.reduce_time)
    if entry.origin == "sub-job":
        reconstructed = cost_model.estimate_subplan_time(
            (op.kind for op in entry.plan.operators()), stats.input_bytes)
        avoided = min(avoided, reconstructed)
    return avoided - cost_model.estimate_load_time(output_bytes)


def estimate_entry_savings(entry, cost_model):
    """Estimated simulated seconds saved by reusing ``entry``, from its
    recorded statistics (the score a :class:`SavingsRanker` ranks by)."""
    return _entry_savings(entry, cost_model, entry.stats.output_bytes)


def realized_entry_savings(entry, cost_model, dfs):
    """The savings estimate re-evaluated at rewrite time against the DFS.

    The same formula as :func:`estimate_entry_savings`, with the load
    cost charged on the stored file's *actual current size* instead of
    the size recorded at registration. The difference between the two is
    the estimator's observable error for this rewrite (stale recorded
    bytes, e.g. after an external rewrite of the stored file).
    """
    stats = entry.stats
    actual_bytes = (dfs.file_size(entry.output_path)
                    if dfs.exists(entry.output_path) else stats.output_bytes)
    return _entry_savings(entry, cost_model, actual_bytes)


class CandidateRanker:
    """Orders match candidates for the matcher's sequential walk.

    ``order(candidates, repository)`` receives the candidates in global
    scan order (the repository's filter produces them that way) and
    returns them in the order the matcher should try them. Implementors
    must be deterministic: the property suite replays streams and
    compares decisions run to run.
    """

    name = "abstract"
    #: True when ``order`` is the identity — repositories skip the call
    #: entirely, keeping the default path bit-identical to the seed.
    is_structural = False

    def bind(self, cost_model):
        """Late-bind the manager's cost model (no-op by default)."""
        return self

    def order(self, candidates, repository):
        raise NotImplementedError

    def estimated_savings(self, entry):
        """Estimated seconds saved by reusing ``entry`` (None when this
        ranker does not estimate)."""
        return None

    def __repr__(self):
        return f"<{type(self).__name__}>"


class StructuralRanker(CandidateRanker):
    """The paper's Section 3 priority order — the default.

    Candidates already arrive in global scan order; passing them through
    unchanged is exactly the seed's behavior, which is what the
    lock-step property suite pins down.
    """

    name = "structural"
    is_structural = True

    def order(self, candidates, repository):
        return tuple(candidates)


class SavingsRanker(CandidateRanker):
    """Best-estimated-savings-first, under the subsumption constraint.

    The order is the priority-greedy topological order of the strict
    subsumption DAG *restricted to the candidate set* — the same scheme
    the repository uses for its global scan order, with rule 2's
    structural metrics replaced by ``(-estimated savings, scan rank)``.
    A container is still tried before every entry it strictly subsumes
    (it eliminates strictly more work whenever both match); among
    unrelated candidates the cost model decides, and equal estimates
    fall back to the structural scan rank, so the order is a pure
    function of the candidate set.

    Requires the indexed :class:`~repro.restore.repository.Repository`
    (or a subclass such as the sharded repository): the frozen seed
    :class:`~repro.restore.baseline.LinearScanRepository` exposes
    neither scan ranks nor subsumption edges.
    """

    name = "savings"

    def __init__(self, cost_model=None):
        self.cost_model = cost_model

    def bind(self, cost_model):
        if self.cost_model is None:
            self.cost_model = cost_model
        return self

    def estimated_savings(self, entry):
        if self.cost_model is None:
            raise RepositoryError(
                "SavingsRanker has no cost model; construct it with one or "
                "pass it to ReStore(ranker=...), which binds the manager's")
        return estimate_entry_savings(entry, self.cost_model)

    def order(self, candidates, repository):
        if len(candidates) <= 1:
            return tuple(candidates)
        rank = repository.scan_rank()
        by_id = {entry.entry_id: entry for entry in candidates}
        edges = repository.subsumption_edges_among(by_id)
        savings = {entry_id: self.estimated_savings(entry)
                   for entry_id, entry in by_id.items()}
        blockers = {entry_id: 0 for entry_id in by_id}
        for below in edges.values():
            for entry_id in below:
                blockers[entry_id] += 1

        def priority(entry_id):
            # rank is unique per entry, so the key is total and the heap
            # never falls through to comparing payloads.
            return (-savings[entry_id], rank[entry_id])

        ready = [(priority(entry_id), entry_id)
                 for entry_id in by_id if blockers[entry_id] == 0]
        heapq.heapify(ready)
        ordered = []
        while ready:
            _, entry_id = heapq.heappop(ready)
            ordered.append(by_id[entry_id])
            for below_id in edges[entry_id]:
                blockers[below_id] -= 1
                if blockers[below_id] == 0:
                    heapq.heappush(ready, (priority(below_id), below_id))
        if len(ordered) != len(by_id):
            raise RepositoryError("subsumption relation is cyclic (bug)")
        return tuple(ordered)


def resolve_ranker(ranker, cost_model):
    """Normalize the ``ReStore(ranker=...)`` knob to a bound instance.

    Accepts None (the structural default), the names ``"structural"``
    and ``"savings"``, or any :class:`CandidateRanker` instance (whose
    ``bind`` receives the manager's cost model — a ``SavingsRanker``
    constructed without one picks it up here).
    """
    if ranker is None or ranker == StructuralRanker.name:
        return StructuralRanker()
    if ranker == SavingsRanker.name:
        return SavingsRanker(cost_model)
    if isinstance(ranker, CandidateRanker):
        return ranker.bind(cost_model)
    raise ValueError(
        f"ranker must be None, 'structural', 'savings', or a "
        f"CandidateRanker, got {ranker!r}"
    )
