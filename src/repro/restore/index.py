"""Indexing structures for the ReStore repository.

The paper's repository matcher is a *sequential scan* in priority order
(Section 3): every ``find_equivalent`` walks all entries with a full
mutual-containment check, and every insert re-derives the subsumption
partial order with O(n^2) containment tests. That is faithful — and it is
exactly the overhead Figs. 11/14 measure. This module provides the two
structures that remove the linear factors without changing a single
matching decision:

* **plan fingerprints** (:func:`plan_fingerprint`) — a canonical
  structural hash over operator signatures and DAG edges of a plan's
  match frontier. Operator equivalence is signature equality plus
  pairwise-equivalent inputs (splits skipped), so two mutually-contained
  single-Store plans always hash identically; the fingerprint therefore
  never produces a false negative and turns ``find_equivalent`` into a
  dict lookup plus an exact confirmation of the (tiny) bucket.

* **leaf-load keys** (:func:`leaf_loads`) — the frozenset of
  ``(path, version)`` pairs a plan reads. Containment maps every
  repository Load onto an input-plan Load with an identical signature
  (``LOAD[path@vN]``), so an entry can only match a job whose load set is
  a superset of the entry's. An inverted index over these keys lets the
  matcher try only plausible entries instead of scanning everything.

Both functions accept skeleton plans reloaded from persistence: a
skeleton Load carries no ``path``/``version`` attributes, but its
canonical signature embeds them and :func:`parse_load_signature` recovers
the pair.
"""

import hashlib

from repro.restore.matcher import match_frontier, skip_splits


def parse_load_signature(signature):
    """Recover ``(path, version)`` from a canonical Load signature.

    Load signatures are ``LOAD[{path}@v{version}]`` with an integer
    version (``POLoad.signature``). Returns None when ``signature`` does
    not have that shape (a foreign skeleton operator, say).
    """
    if not (signature.startswith("LOAD[") and signature.endswith("]")):
        return None
    body = signature[len("LOAD["):-1]
    path, sep, version = body.rpartition("@v")
    if not sep:
        return None
    try:
        return path, int(version)
    except ValueError:
        return None


def leaf_loads(plan):
    """The frozenset of ``(path, version)`` pairs ``plan`` reads.

    Returns None when any leaf Load cannot be keyed (no path/version
    attributes and an unparseable signature) — callers must then treat
    the plan as matchable against anything, which preserves correctness
    at the cost of indexing that one entry.
    """
    keys = set()
    for op in plan.operators():
        if op.kind != "load":
            continue
        path = getattr(op, "path", None)
        version = getattr(op, "version", None)
        if path is None or version is None:
            parsed = parse_load_signature(op.signature())
            if parsed is None:
                return None
            path, version = parsed
        keys.add((path, version))
    return frozenset(keys)


def operator_fingerprint(op):
    """Canonical structural hash of the subtree rooted at ``op``.

    The fingerprint is a SHA-256 Merkle hash over (signature, child
    fingerprints) with Split operators skipped — precisely the structure
    :func:`repro.restore.matcher.find_containment` recurses over. Mutual
    containment of two single-Store plans implies equivalent frontiers,
    hence equal fingerprints; unequal fingerprints prove non-equivalence.
    Child *digests* are combined rather than child serializations, so
    shared subplans cost O(nodes), not O(paths). Stable across processes,
    so it round-trips through persistence.

    Because the hash covers the frontier subtree only (never the Store),
    an uncloned sub-plan operator and the cloned entry plan built from it
    fingerprint identically — which is what lets the async ingest queue
    coalesce duplicate registrations without cloning on the hot path.
    """
    memo = {}

    def canon(node_op):
        node_op = skip_splits(node_op)
        key = id(node_op)
        cached = memo.get(key)
        if cached is None:
            signature = node_op.signature()
            node = hashlib.sha256(
                f"[{len(signature)}:{signature}".encode("utf-8"))
            for parent in node_op.inputs:
                node.update(canon(parent).encode("ascii"))
            node.update(b"]")
            cached = node.hexdigest()
            memo[key] = cached
        return cached

    return canon(op)


def plan_fingerprint(plan):
    """Canonical structural hash of ``plan``'s match frontier.

    Delegates to :func:`operator_fingerprint` at
    :func:`~repro.restore.matcher.match_frontier` — see there for the
    hash's equivalence guarantees.
    """
    return operator_fingerprint(match_frontier(plan))


#: sentinel distinguishing "caller did not pass keys" from None (unkeyable)
_UNKEYED = object()


class LoadIndex:
    """Inverted index from leaf-load keys to entry ids.

    ``candidate_ids(job_loads)`` answers "which entries could possibly be
    contained in a plan reading exactly these datasets" — entries whose
    load set is a subset of ``job_loads``, plus any entry whose loads
    could not be keyed (conservatively always a candidate).
    """

    def __init__(self):
        self._postings = {}    # (path, version) -> set of entry ids
        self._loads = {}       # entry id -> frozenset of keys, or None
        self._unindexed = set()  # ids with unknown (or empty) load sets

    def add(self, entry, keys=_UNKEYED):
        if keys is _UNKEYED:
            keys = leaf_loads(entry.plan)
        self._loads[entry.entry_id] = keys
        if not keys:  # None (unparseable) or empty: always a candidate
            self._unindexed.add(entry.entry_id)
            return
        for key in keys:
            self._postings.setdefault(key, set()).add(entry.entry_id)

    def discard(self, entry):
        keys = self._loads.pop(entry.entry_id, None)
        self._unindexed.discard(entry.entry_id)
        for key in keys or ():
            postings = self._postings.get(key)
            if postings is not None:
                postings.discard(entry.entry_id)
                if not postings:
                    del self._postings[key]

    def loads_of(self, entry_id):
        return self._loads.get(entry_id)

    def candidate_ids(self, job_loads):
        """Ids of entries whose load set is a subset of ``job_loads``.

        ``job_loads`` of None (unkeyable plan) means "no filtering":
        returns None, and the caller must fall back to the full scan.
        """
        if job_loads is None:
            return None
        touched = set(self._unindexed)
        for key in job_loads:
            touched |= self._postings.get(key, _EMPTY)
        return {
            entry_id for entry_id in touched
            if self._loads[entry_id] is None or self._loads[entry_id] <= job_loads
        }

    def superset_ids(self, entry_loads):
        """Ids of entries whose load set is a superset of ``entry_loads``.

        These are the only existing entries whose plans could contain a
        new plan reading ``entry_loads`` (used for subsumption-edge
        discovery on insert). Unkeyable entries are always included.
        """
        if not entry_loads:
            return set(self._loads)
        iterator = iter(entry_loads)
        result = set(self._postings.get(next(iterator), _EMPTY))
        for key in iterator:
            if not result:
                break
            result &= self._postings.get(key, _EMPTY)
        return result | self._unindexed


_EMPTY = frozenset()
