"""Incremental repository persistence: per-shard segmented change logs.

The paper's repository is long-lived durable state ("Facebook stores the
result of any query ... for seven days"), yet :func:`save_repository`
rewrites the entire file on every checkpoint — O(repository) per save,
which defeats the production-scale goal once the repository holds
thousands of entries. :class:`RepositoryLog` makes the steady-state
checkpoint cost O(delta) — and, since the log is **segmented along the
shard layout**, the steady-state *compaction* cost O(dirty shards):

* it subscribes to the repository's **change-event channel**
  (``Repository.add_listener``) and turns every mutation — insert,
  remove, use-stamp — into one JSONL record tagged with a monotonic
  sequence number and the owning shard id;
* records are buffered per partition and :meth:`flush` appends each
  group to that shard's own **segment file** through
  :meth:`~repro.dfs.filesystem.DistributedFileSystem.append_lines`
  (which places blocks only for the new lines), so the per-checkpoint
  write is proportional to what changed since the last one;
* when one shard's segment outgrows its slice of the repository
  (``segment records / shard entries > compact_ratio``), :meth:`compact`
  amortizes it away **for that shard only**: the dirty shard's snapshot
  *section file* is rewritten (a fresh immutable generation), an
  O(changes) **order-delta** record is appended to the v5 order log
  (never the full global order — that was v4's last cross-shard write),
  the manifest is re-pointed, and just that shard's segment is
  truncated. Clean shards' sections are reused at the file level — a
  mutation burst confined to one of N shards compacts in O(n/N), not
  O(n).

Crash safety is positional, not transactional, per shard: new section
files land under *new* names, then the manifest swap makes them
authoritative, and only then are the dirty segments truncated. A crash
before the manifest swap leaves unreferenced section files (garbage,
collected by the next compaction); a crash after it leaves old segment
records at or below the new section's ``base_seq`` watermark — replay
skips them as stale. A crash mid-append leaves a torn final line in one
segment — replay drops it. Either way ``load_repository`` rebuilds
exactly the durable state, and a re-attached ``RepositoryLog`` resumes
from the loader's replay state (healing with a full compaction when the
files show crash damage). Use-stamps are logged as absolute counter
values, so replaying one twice converges instead of double-counting.

Entries are identified across restarts by **stable log keys** (the
``key`` field in section and segment records), assigned by this class on
insert — entry ids are process-local and re-minted on every load, so
remove/use records cannot reference them. All records of one entry
(insert, use-stamps, remove) land in one segment: the owning shard is a
pure function of the entry's loads, fixed for its lifetime.

Attaching to a repository loaded from a v1-v4 file migrates it: the
initial full compaction splits a single-file snapshot into per-shard
sections and segments (v1-v3), and moves a v4 manifest's embedded scan
order into the order log — losslessly either way (scan order,
statistics, and match decisions are bit-identical — the property suite
proves it).

**Worker-owned durable state.** When the attached repository is backed
by shard worker processes, :meth:`RepositoryLog.attach` negotiates
worker ownership of the per-partition files (``worker_durable=None``
auto-enables it; ``False`` forces the classic front-end path; ``True``
requires a process pool): each worker then appends its own segment —
pending records ride the mutation flush as one combined worker message,
acked before the pending buffer clears — and rewrites its own section
on a ``compact_section`` request, serializing its replica concurrently
with the other dirty shards. This class shrinks to the **manifest
coordinator**: it still owns sequence numbers, stable keys, the scan-
order record, the single manifest swap, the segment truncations, and
the generation GC — the PERSISTENCE §6 crash ordering is unchanged on
disk, every worker write is collected (acked) before the swap, and any
declined or crashed worker write falls back to the identical front-end
write. An owner that dies with an append in flight leaves *uncertain*
durability; :meth:`~RepositoryLog.flush` reconciles the pending buffer
against the segment's actual contents (watermark dedup) before
retrying on a promoted replica, so failover never double-appends.
"""

import json
import threading

from repro.common.errors import RepositoryError
from repro.restore.persistence import (
    DEFAULT_REPOSITORY_PATH,
    DELTA_MANIFEST_VERSION,
    encode_order_delta,
    entry_to_json,
    MANIFEST_KEY,
    order_log_path,
    order_log_prefix,
    read_manifest_line,
    section_file_path,
    section_file_prefix,
    segment_file_path,
    shard_label,
)
from repro.restore.service import WorkerCrashed

#: rebase threshold: once this many order records accumulate in the
#: current order log, the next compaction rewrites it as a single full
#: record (a fresh generation-named file) instead of appending another
#: delta — bounding both the file and the reload's replay chain. The
#: occasional O(repository) rebase write amortizes to O(1) per
#: compaction.
ORDER_REBASE_RECORDS = 64


class RepositoryLog:
    """Segmented append-only change log + dirty-only compaction.

    Parameters:

    * ``dfs`` — the file system holding manifest, sections and segments;
    * ``path`` — the manifest path (shared with ``load_repository``);
      section files live at ``<path>.sec-<label>.g<generation>``;
    * ``log_path`` — the segment *base* path (default ``<path>.log``):
      shard ``s``'s segment is ``<log_path>.<s>``, the catch-all's (and
      a plain repository's single partition's) is ``<log_path>.catchall``;
    * ``compact_ratio`` — per-shard compaction threshold: a shard is
      *dirty* when its segment records per owned entry exceed this
      (≤ 0 is rejected; large values effectively disable compaction,
      which the ablation benchmark uses to isolate the append cost);
    * ``ranker`` — deployment metadata recorded in the manifest, exactly
      as ``save_repository(..., ranker=...)`` records it.

    Call :meth:`attach` to bind a repository (the indexed
    :class:`~repro.restore.repository.Repository` or the sharded
    subclass — the frozen seed baseline has no change-event channel),
    then :meth:`checkpoint` whenever the on-DFS state should catch up
    with the live one; :class:`~repro.restore.manager.ReStore` does this
    every ``checkpoint_every`` submits.
    """

    #: Locking contract, enforced by `repro.tools.statlint`
    #: (``lock-discipline``): every piece of log-side checkpoint state
    #: is only touched inside ``with self._mutex:`` — the change-event
    #: listener fires on whichever thread mutates the repository (the
    #: registrar under async ingest) while flush/compact/snapshot run
    #: elsewhere. ``*_locked`` methods assert "caller holds the mutex".
    GUARDED_BY = {"_seq": "_mutex", "_next_key": "_mutex",
                  "_keys": "_mutex", "_pending": "_mutex",
                  "_segment_records": "_mutex", "_sections": "_mutex",
                  "_order_log": "_mutex",
                  "_last_recorded_order": "_mutex",
                  "_order_records": "_mutex", "_generation": "_mutex",
                  "snapshot_reads": "_mutex",
                  "_worker_durable": "_mutex",
                  "worker_flushes": "_mutex",
                  "worker_sections": "_mutex",
                  "reconciled_records": "_mutex"}

    def __init__(self, dfs, path=DEFAULT_REPOSITORY_PATH, log_path=None,
                 compact_ratio=1.0, ranker=None, worker_durable=None):
        if compact_ratio <= 0:
            raise ValueError(
                f"compact_ratio must be positive, got {compact_ratio}")
        self.dfs = dfs
        self.path = path
        self.log_path = log_path if log_path is not None else f"{path}.log"
        self.compact_ratio = compact_ratio
        self.ranker = ranker
        self.repository = None
        # Event intake, durable reads and checkpointing share one
        # re-entrant mutex: under async ingest the registrar thread
        # mutates the repository (each mutation lands here via the
        # change-event channel) while the submit thread may flush or a
        # worker recovery may read a partition snapshot. Delivery order
        # through the channel IS the durable order — the lock only makes
        # each record's intake (seq assignment + buffer append) and each
        # flush/compact/snapshot atomic, it never reorders. Re-entrant
        # because checkpoint() nests compact()/flush().
        self._mutex = threading.RLock()
        self._seq = 0                # last sequence number assigned
        self._next_key = 0           # stable-key allocator
        self._keys = {}              # entry_id -> stable log key
        self._pending = {}           # label -> serialized records not on DFS
        self._segment_records = {}   # label -> complete records in its segment
        self._sections = {}          # label -> manifest section descriptor
        # v5 order-log state: the file the current manifest points at,
        # the scan order as last made durable there (the delta base),
        # and how many records the file holds (the rebase trigger).
        self._order_log = None
        self._last_recorded_order = None
        self._order_records = 0
        # Section-file generation counter. Strictly monotonic and
        # *decoupled from the sequence counter*: a healing or repeated
        # compaction can run at an unchanged seq, and naming files by
        # seq alone would overwrite the currently-referenced section in
        # place — a crash before the manifest swap would then brick the
        # restart. attach() seeds it above every generation on disk.
        self._generation = 0
        #: how many partition_snapshot() replays this log has served —
        #: the durable-read witness: warm replica failover must leave it
        #: untouched, only cold worker recovery (and replica backfill)
        #: may move it
        self.snapshot_reads = 0
        #: requested worker-ownership mode: None auto-enables when the
        #: attached repository has a durable-capable worker pool, True
        #: requires one (attach raises otherwise), False keeps every
        #: durable write front-end-side
        self.worker_durable = worker_durable
        self._worker_durable = False   # negotiated at attach time
        #: pending-record flushes appended by their owning worker
        self.worker_flushes = 0
        #: section rewrites performed by their owning worker
        self.worker_sections = 0
        #: pending records found already durable while reconciling a
        #: segment after an uncertain worker append (the watermark-dedup
        #: witness: each one is a double-append that did not happen)
        self.reconciled_records = 0

    # Lifecycle --------------------------------------------------------------

    def attach(self, repository):
        """Bind ``repository`` and subscribe to its change events.

        A repository freshly rebuilt by ``load_repository`` from this
        manifest resumes seamlessly: sequence numbers, stable keys,
        per-segment record counts, the clean sections' file pointers,
        and the order log's delta base continue from the loader's
        replay state. Anything else — a live repository, one loaded
        from a v1-v4 file, or a reload whose files had crash damage
        (torn tails, stale records, orphan order records) — is
        checkpointed immediately: attach writes a fresh full v5
        snapshot (every section, a rebased order log) and truncates
        every segment. That initial compaction is also the v1-v4 → v5
        migration path.
        """
        if self.repository is not None:
            if self.repository is repository:
                return self
            raise RepositoryError(
                "this RepositoryLog is already attached to a different "
                "repository; detach() it first")
        if not hasattr(repository, "add_listener"):
            # Checked before any state mutates, so a failed attach
            # leaves the log reusable.
            raise RepositoryError(
                f"{type(repository).__name__} has no change-event "
                f"channel (add_listener); the frozen seed baseline "
                f"cannot drive a RepositoryLog")
        if self.worker_durable and not hasattr(
                getattr(repository, "worker_pool", None),
                "enable_worker_durability"):
            # Also before any state mutates: a log built with
            # worker_durable=True must not silently degrade to
            # front-end checkpointing.
            raise RepositoryError(
                "worker_durable=True needs a process-backed repository "
                "(ShardedRepository with executor='processes'); this "
                "one has no durable-capable worker pool")
        if getattr(repository, "persistence_log", None) is not None:
            # Two logs on one repository would buffer every mutation
            # twice (one of them usually forever) and, at shared paths,
            # interleave records with independent sequence counters.
            raise RepositoryError(
                "repository already has an attached RepositoryLog; "
                "detach()/close() it first")
        loaded_from_here = (
            getattr(repository, "loader_report", None) is not None
            and repository.loader_report.snapshot_path == self.path
            # Identity, not just a matching path string: a load from a
            # *different* DFS must not vouch for this one (an empty
            # repository loaded from fresh dfs_A would otherwise bypass
            # the wipe guard and compact over dfs_B's durable state).
            and getattr(repository.loader_report, "dfs", None) is self.dfs
            # And a file must actually have been read: a load that found
            # nothing (e.g. the manifest was deleted while segments
            # still hold records) vouches for nothing — the wipe
            # guard must still protect the segments.
            and repository.loader_report.format_version is not None)
        probe = None  # lazy: the clean-resume path never needs it
        if len(repository) == 0 and not loaded_from_here:
            probe = self._probe_durable_state()
            if probe[0]:
                # Almost certainly a restart that forgot
                # load_repository(): attaching would compact the empty
                # live state over the snapshot and silently wipe it. (A
                # repository genuinely emptied after loading from this
                # path is exempt — its loader report vouches for it.)
                raise RepositoryError(
                    f"refusing to attach an empty repository over the "
                    f"snapshot at {self.path!r}, which holds {probe[0]} "
                    f"record(s): the initial compaction would wipe it. "
                    f"Load it first (load_repository) or delete the "
                    f"stale snapshot to really start fresh")
        self.repository = repository
        # The whole rebind holds the mutex: add_listener() below makes
        # the change-event channel live, and under async ingest events
        # can arrive from the registrar thread the moment it does.
        with self._mutex:
            self._bind_locked(repository, probe)  # statlint: disable=lock-ordering -- name-aliasing false positive: the reported mutex->ingest-lock edge runs _compact_locked -> compact_sections -> receive -> _WorkerHandle.kill -> close, where close is the worker's multiprocessing-queue close, not ingest's Registrar.close; no code acquires the ingest lock under this mutex (the real order is ingest lock -> mutex, via the registrar's apply batch)
        return self

    def _bind_locked(self, repository, probe):
        # A fresh binding: records buffered (and keys assigned) for a
        # previously attached repository describe state this one does
        # not share — flushing them into the new segments would inject
        # ghost mutations and reused sequence numbers (detach() warns to
        # flush/close first if they were wanted).
        self._pending = {}
        self._keys = {}
        self._segment_records = {}
        self._sections = {}
        self._order_log = None
        self._last_recorded_order = None
        self._order_records = 0
        # Negotiate worker ownership of the per-partition durable files
        # before any checkpoint below (the healing compaction included):
        # with a durable-capable worker pool and worker_durable not
        # forced off, workers spawned from here on own their segment
        # appends and section rewrites; this log coordinates (manifest
        # swap, order log, truncations, GC). On-disk format unchanged.
        pool = getattr(repository, "worker_pool", None)
        self._worker_durable = (
            self.worker_durable is not False
            and hasattr(pool, "enable_worker_durability"))
        if self._worker_durable:
            pool.enable_worker_durability(self.dfs)
        report = getattr(repository, "loader_report", None)
        resumable = (
            report is not None
            and report.format_version == DELTA_MANIFEST_VERSION
            and report.snapshot_path == self.path
            and report.log_path == self.log_path
            and getattr(report, "dfs", None) is self.dfs
            # The replay state is single-use: it describes the repository
            # as loaded. A later attach (after mutations possibly logged
            # and compacted by another RepositoryLog) must not rewind the
            # sequence counter to load time — records appended after a
            # rewind would sit at or below the on-DFS watermarks and be
            # silently skipped as stale on the next reload.
            and not report.replay_state_consumed
            and self.dfs.exists(self.path)
            # The on-DFS partition layout must be the live one: a v4
            # file loaded into a repository with a different shard count
            # would tag events with shard ids its sections do not cover.
            and self._layout_matches(report)
        )
        if report is not None:
            report.replay_state_consumed = True
        untracked_mutations = False
        if resumable:
            self._seq = report.last_seq
            live_ids = {entry.entry_id for entry in repository}
            self._keys = {entry_id: key
                          for entry_id, key in report.keys.items()
                          if entry_id in live_ids}
            # Mutations applied between load and attach happened before
            # the listener subscribed, so the log never saw them: a
            # removal leaves a loader key with no live entry, a
            # use-stamp leaves live stats differing from their values at
            # load time. Either forces the healing compaction below
            # (inserts are caught by the unkeyed check).
            untracked_mutations = (
                len(self._keys) != len(report.keys)
                or any((entry.stats.use_count, entry.stats.last_used_tick)
                       != report.use_stats.get(entry.entry_id)
                       for entry in repository))
        self._next_key = 1 + max(
            (_key_index(key) for key in self._keys.values()), default=-1)
        unkeyed = [entry for entry in repository
                   if entry.entry_id not in self._keys]
        for entry in unkeyed:
            self._assign_key_locked(entry)
        repository.add_listener(self._on_event)
        repository.persistence_log = self
        self._generation = 1 + max(
            (_section_generation(file)
             for prefix in (section_file_prefix(self.path),
                            order_log_prefix(self.path))
             for file in self.dfs.list_files(prefix=prefix)), default=-1)
        clean = (resumable
                 and not unkeyed
                 and not untracked_mutations
                 and report.torn_tail_dropped == 0
                 and report.stale_records == 0
                 and report.dangling_records == 0
                 # Orphan order records (a compaction crashed between
                 # its order-log append and its manifest swap) sit in
                 # the file this log would keep appending to; resuming
                 # over them would interleave live generations with the
                 # dead one's. Heal with a rebase instead.
                 and report.orphan_order_records == 0)
        if clean:
            self._segment_records = dict(report.segment_records)
            self._sections = {label: dict(state)
                              for label, state in report.section_state.items()}
            self._order_log = report.order_log_path
            self._last_recorded_order = [
                list(pair) for pair in report.recorded_order or ()]
            self._order_records = report.order_records
            # Delta records carry generations above the file's name
            # (they are appended between rebases): the counter must
            # clear the manifest's authoritative generation too, or a
            # fresh compaction could reuse a generation already present
            # in the order log.
            self._generation = max(self._generation, report.order_gen + 1)
        else:
            # The healing compaction must not hand out watermarks below
            # sequence numbers already durable at this path: if the
            # compaction crashes between the manifest swap and the
            # segment truncation, leftover records above the watermark
            # would replay as fresh mutations on top of sections that
            # never saw them.
            if probe is None:
                probe = self._probe_durable_state()
            self._seq = max(self._seq, probe[1])
            self.compact()

    def _layout_matches(self, report):
        """Does the loaded manifest's partition layout (labels and
        segment paths) match what this log would write for the live
        repository?"""
        expected = {shard_label(shard_id)
                    for shard_id in self.repository.shard_sizes()}
        if set(report.section_state) != expected:
            return False
        return all(state.get("segment") == self._segment_path(label)
                   for label, state in report.section_state.items())

    def _probe_durable_state(self):
        """One pass over the durable files at this path, returning
        ``(records, max_seq)``: how many records they hold (snapshot
        entries plus outstanding segment lines — state can live entirely
        in the segments before the first compaction; conservative,
        possibly-stale lines included) and the highest sequence number
        among the manifest's watermarks and the segment records
        (unparseable lines, e.g. a torn tail, are skipped). Runs once
        per :meth:`attach` — the wipe guard needs the count, the
        non-resumable compaction needs the sequence floor."""
        records = 0
        top = 0
        if self.dfs.exists(self.path):
            manifest = read_manifest_line(self.dfs, self.path)
            if manifest is not None:
                num_lines = self.dfs.status(self.path).num_lines
                records += manifest.get("entries", max(0, num_lines - 1))
                for field in ("base_seq", "last_seq"):
                    value = manifest.get(field, 0)
                    if isinstance(value, int):
                        top = max(top, value)
                for section in manifest.get("sections", ()):
                    if (isinstance(section, dict)
                            and isinstance(section.get("base_seq"), int)):
                        top = max(top, section["base_seq"])
            else:
                # v1 (or unreadable first line): one entry per line.
                records += self.dfs.status(self.path).num_lines
        # The legacy single v3 log plus every v4 segment under the base.
        log_files = set(self.dfs.list_files(prefix=f"{self.log_path}."))
        if self.dfs.exists(self.log_path):
            log_files.add(self.log_path)
        for log_file in sorted(log_files):
            log_lines = self.dfs.read_lines(log_file)
            records += len(log_lines)
            for line in log_lines:
                try:
                    record = json.loads(line)
                except ValueError:
                    continue
                if isinstance(record, dict) and isinstance(record.get("seq"),
                                                           int):
                    top = max(top, record["seq"])
        return records, top

    def detach(self):
        """Unsubscribe from the repository (pending records are kept;
        flush or compact first if they must reach the DFS)."""
        if self.repository is not None:
            self.repository.remove_listener(self._on_event)
            if getattr(self.repository, "persistence_log", None) is self:
                self.repository.persistence_log = None
            self.repository = None

    def close(self):
        """Flush pending deltas, then detach."""
        if self.repository is not None:
            self.flush()
            self.detach()

    def _require_attached(self, operation):
        """Checkpointing needs the live repository (shard sizes, members,
        scan order); fail with a clean error instead of the bare
        AttributeError an unattached ``self.repository`` would raise."""
        if self.repository is None:
            raise RepositoryError(
                f"cannot {operation}(): this RepositoryLog is not "
                f"attached to a repository (call attach() first)")

    # Change events ----------------------------------------------------------

    def _assign_key_locked(self, entry):
        key = f"k{self._next_key}"
        self._next_key += 1
        self._keys[entry.entry_id] = key
        return key

    def _on_event(self, op, entry):
        with self._mutex:
            self._intake_locked(op, entry)

    def _intake_locked(self, op, entry):
        shard_id = self.repository.shard_id_of(entry)
        record = {"op": op, "shard": shard_id}
        if op == "insert":
            record["key"] = self._assign_key_locked(entry)
            record["entry"] = entry_to_json(entry)
        elif op == "remove":
            key = self._keys.pop(entry.entry_id, None)
            if key is None:
                # The entry was never keyed, so nothing durable
                # references it: a '"key": null' remove record would be
                # pure noise the loader could only drop. Skip it — and
                # skip *before* taking a sequence number, so the durable
                # stream has no phantom gap.
                return
            record["key"] = key
        elif op == "use":
            key = self._keys.get(entry.entry_id)
            if key is None:
                return  # same: an unkeyed use-stamp references nothing
            record["key"] = key
            # Absolute values, not increments: replay is idempotent.
            record["use_count"] = entry.stats.use_count
            record["last_used_tick"] = entry.stats.last_used_tick
        else:
            return  # an event this release does not persist
        self._seq += 1
        record["seq"] = self._seq
        self._pending.setdefault(shard_label(shard_id), []).append(
            json.dumps(record, sort_keys=True))

    # Checkpointing ----------------------------------------------------------

    def segment_path(self, shard_id):
        """The segment file holding ``shard_id``'s change records."""
        return self._segment_path(shard_label(shard_id))

    def _segment_path(self, label):
        return segment_file_path(self.log_path, label)

    @property
    def pending_records(self):
        """Buffered change records not yet appended to any segment."""
        with self._mutex:
            return sum(len(lines) for lines in self._pending.values())

    @property
    def log_records(self):
        """Complete change records across all DFS segments."""
        with self._mutex:
            return sum(self._segment_records.values())

    def segment_record_counts(self):
        """Complete on-DFS records per partition label (observability)."""
        with self._mutex:
            return {label: count
                    for label, count in sorted(self._segment_records.items())
                    if count}

    def stable_keys(self):
        """``entry_id -> stable log key`` for every live keyed entry (a
        copy). The service layer inverts this to translate a replayed
        partition's durable keys back to the front-end's entry ids."""
        with self._mutex:
            return dict(self._keys)

    def partition_snapshot(self, shard_id):
        """One partition's durable-plus-pending state: ``{stable key:
        entry json}`` after replaying its section entries, its segment
        records, and this log's still-buffered pending records for the
        label (stale records at or below the section's ``base_seq``
        skipped, unparseable lines — a torn tail — dropped).

        Reads only that partition's files — the point of the per-shard
        section/segment split: a crashed shard *worker* is re-seeded
        from here without touching any other partition
        (:class:`~repro.restore.service.ShardWorkerPool` recovery).

        Holds the log mutex for the whole read — it *is* the compaction
        barrier. A snapshot taken without it could observe the window
        between the manifest swap and the segment truncation (a fresh
        section plus the stale records it subsumes, i.e. a double
        replay), or a section file mid-GC. The concurrent
        snapshot-during-compact test in ``tests/test_restore_wal.py``
        hammers exactly this interleaving.
        """
        self._require_attached("partition_snapshot")
        with self._mutex:
            return self._partition_snapshot_locked(shard_id)

    def _partition_snapshot_locked(self, shard_id):
        self.snapshot_reads += 1
        label = shard_label(shard_id)
        state = self._sections.get(label)
        alive = {}
        base_seq = 0
        if state is not None:
            base_seq = state.get("base_seq", 0)
            file = state.get("file")
            if file is not None and self.dfs.exists(file):
                for line in self.dfs.read_lines(file):
                    record = json.loads(line)
                    alive[record["key"]] = record["entry"]
        segment = self._segment_path(label)
        lines = self.dfs.read_lines(segment) if self.dfs.exists(segment) else []
        lines = list(lines) + list(self._pending.get(label, ()))
        records = []
        for line in lines:
            try:
                record = json.loads(line)
            except ValueError:
                continue
            if isinstance(record, dict) and isinstance(record.get("seq"), int):
                records.append(record)
        records.sort(key=lambda record: record["seq"])
        for record in records:
            if record["seq"] <= base_seq:
                continue
            op, key = record.get("op"), record.get("key")
            if key is None:
                continue
            if op == "insert":
                alive[key] = record["entry"]
            elif op == "remove":
                alive.pop(key, None)
            elif op == "use" and key in alive:
                stats = alive[key].get("stats")
                if isinstance(stats, dict):
                    stats["use_count"] = record["use_count"]
                    stats["last_used_tick"] = record["last_used_tick"]
        return alive

    def log_ratio(self):
        """(on-DFS + pending) change records per repository entry,
        across all segments (0 entries count as 1; an unattached log
        reports over the empty repository). Compaction triggers on the
        *per-shard* ratios — see :meth:`dirty_shards` — this global view
        is kept for reporting."""
        size = len(self.repository) if self.repository is not None else 0
        return (self.log_records + self.pending_records) / max(1, size)

    def _sizes_by_label(self):
        if self.repository is None:
            return {}
        return {shard_label(shard_id): size
                for shard_id, size in self.repository.shard_sizes().items()}

    def dirty_shards(self):
        """Labels of partitions whose segments outgrew their slice:
        (segment + pending records) per owned entry above
        ``compact_ratio``. These are the shards :meth:`checkpoint` will
        compact — the others' sections are reused untouched."""
        sizes = self._sizes_by_label()
        dirty = []
        with self._mutex:
            for label in sorted(set(self._segment_records)
                                | set(self._pending)):
                records = (self._segment_records.get(label, 0)
                           + len(self._pending.get(label, ())))
                if records > 0 and (records / max(1, sizes.get(label, 0))
                                    > self.compact_ratio):
                    dirty.append(label)
        return dirty

    def should_compact(self):
        return bool(self.dirty_shards())

    def flush(self):
        """Append pending change records to their segments; O(delta),
        one tail-block append per touched partition — performed by the
        partition's owning worker when worker ownership was negotiated
        (the records ride the mutation flush as one combined message,
        acked), by the front-end otherwise. Same bytes either way."""
        with self._mutex:
            return self._flush_labels_locked(sorted(self._pending))

    def _worker_pool_locked(self):
        """The attached repository's durable-capable worker pool, or
        None when worker ownership is off, unavailable, or the pool has
        been closed (every caller then writes front-end-side)."""
        if not self._worker_durable or self.repository is None:
            return None
        pool = getattr(self.repository, "worker_pool", None)
        if pool is None or not getattr(pool, "durable_enabled", False):
            return None
        return pool

    def _flush_labels_locked(self, labels):
        appended = 0
        pool = self._worker_pool_locked()
        shard_ids = {}
        if pool is not None:
            shard_ids = {shard_label(shard_id): shard_id
                         for shard_id in self.repository.shard_sizes()}
        for label in labels:
            lines = self._pending.get(label)
            if not lines:
                continue
            segment = self._segment_path(label)
            if pool is not None and label in shard_ids:
                appended += self._flush_via_worker_locked(
                    pool, shard_ids[label], label, segment)
                continue
            self.dfs.append_lines(segment, lines)
            self._segment_records[label] = (
                self._segment_records.get(label, 0) + len(lines))
            # Cleared per label as soon as its append lands, so a
            # failure on a later segment cannot double-append this one.
            self._pending[label] = []
            appended += len(lines)
        self._pending = {label: lines
                         for label, lines in self._pending.items() if lines}
        return appended

    def _flush_via_worker_locked(self, pool, shard_id, label, segment):
        """Route one label's pending records through its owning worker:
        the worker appends them to its own segment (via the DFS
        gateway) and acks; only the ack clears the pending buffer. A
        crash with the append in flight is *uncertain* — the records
        may or may not have reached the segment — so the buffer is
        reconciled against the segment's actual contents (watermark
        dedup, :meth:`_reconcile_pending_locked`) before the one retry,
        which a replicated pool serves from the promoted owner. With no
        durable-capable live worker (or after the retry also died) the
        front-end appends the remainder itself — every pending record
        is durable exactly once when this returns."""
        total = len(self._pending.get(label) or ())
        for _ in range(2):
            lines = self._pending.get(label)
            if not lines:
                break
            try:
                acked = pool.flush_durable(shard_id, segment, lines)
            except WorkerCrashed:
                self._reconcile_pending_locked(label, segment)
                continue
            if not acked:
                break
            self._segment_records[label] = (
                self._segment_records.get(label, 0) + len(lines))
            self._pending[label] = []
            self.worker_flushes += 1
            break
        lines = self._pending.get(label)
        if lines:
            self.dfs.append_lines(segment, lines)
            self._segment_records[label] = (
                self._segment_records.get(label, 0) + len(lines))
            self._pending[label] = []
        return total

    def _reconcile_pending_locked(self, label, segment):
        """Watermark dedup after an uncertain worker append: re-read
        the segment, drop every pending record whose sequence number is
        at or below the segment's top (the dead worker already flushed
        it — re-sending it through a promoted replica or the front-end
        fallback would make the loader duplicate the entry), and
        re-sync the segment record count from the file."""
        lines = (self.dfs.read_lines(segment)
                 if self.dfs.exists(segment) else [])
        top = 0
        for line in lines:
            try:
                record = json.loads(line)
            except ValueError:
                continue
            if isinstance(record, dict) and isinstance(record.get("seq"),
                                                       int):
                top = max(top, record["seq"])
        kept = []
        for line in self._pending.get(label, ()):
            if json.loads(line)["seq"] <= top:
                self.reconciled_records += 1
            else:
                kept.append(line)
        self._pending[label] = kept
        self._segment_records[label] = len(lines)
        return top

    def checkpoint(self):
        """Bring the on-DFS state up to the live repository.

        Appends the pending deltas — except for partitions whose
        segments outgrew the ``compact_ratio`` threshold, which are
        compacted instead (their pending deltas are subsumed by the
        fresh section rewrite). Returns ``{"appended": n,
        "compacted": bool, "compacted_shards": [labels]}``; ``appended``
        counts every pending record made durable either way.
        """
        self._require_attached("checkpoint")
        with self._mutex:
            dirty = self.dirty_shards()
            if dirty:
                durable = self.pending_records
                self.compact(dirty)
                return {"appended": durable, "compacted": True,
                        "compacted_shards": dirty}
            return {"appended": self.flush(), "compacted": False,
                    "compacted_shards": []}

    def compact(self, shards=None):
        """Streaming snapshot rewrite of ``shards`` (labels; default:
        every partition) + truncation of just those shards' segments.

        Per dirty shard, in crash-safe order:

        1. clean shards' pending records are flushed first, so every
           record at or below the new manifest's ``last_seq`` is durable
           before the manifest references that sequence number;
        2. each compacted shard's entries are rewritten into a **new**
           generation-suffixed section file — never in place, so a crash
           here leaves the old manifest's files intact (the new ones are
           unreferenced garbage, collected by the next compaction);
        3. the scan-order record lands in the order log — an O(changes)
           delta appended to the current file for a dirty-only
           compaction, a full record in a fresh generation-named file on
           rebase — a crash here leaves an orphan record/file the loader
           skips;
        4. the manifest swap makes the new sections (and, via
           ``order_gen``, the new order record) authoritative;
        5. only then are the compacted shards' segments truncated — a
           crash between 4 and 5 leaves records at or below the new
           sections' ``base_seq``, skipped as stale on replay;
        6. superseded section and order-log generations (and a legacy v3
           single log) are deleted.

        The cost is O(entries of the compacted shards) serialization
        plus an O(changes since the last compaction) scan-order record
        (a delta appended to the v5 order log; full compactions rebase
        the order log to a single full record).
        """
        self._require_attached("compact")
        with self._mutex:
            return self._compact_locked(shards)

    def _compact_locked(self, shards):
        repository = self.repository
        labels = {shard_label(shard_id): shard_id
                  for shard_id in repository.shard_sizes()}
        if shards is None:
            targets = dict(labels)
        else:
            unknown = sorted(set(shards) - set(labels))
            if unknown:
                raise RepositoryError(
                    f"cannot compact unknown partition(s) {unknown}; "
                    f"this repository has {sorted(labels)}")
            targets = {label: labels[label] for label in shards}
        for label, shard_id in labels.items():
            # A partition with no recorded section state must be
            # rewritten too, or the new manifest could not reference it.
            if label not in targets and label not in self._sections:
                targets[label] = shard_id
        self._flush_labels_locked([label for label in sorted(self._pending)
                                   if label not in targets])
        watermark = self._seq
        # A fresh generation per compaction, even at an unchanged seq:
        # the referenced section files must never be rewritten in place.
        generation = self._generation
        self._generation += 1
        rank = repository.scan_rank()
        sections = {}
        rewrites = {}
        for label in sorted(labels):
            if label not in targets:
                sections[label] = self._sections[label]
                continue
            members = sorted(repository.shard_members(labels[label]),
                             key=lambda entry: rank[entry.entry_id])
            file = None
            if members:
                file = section_file_path(self.path, label, generation)
                rewrites[label] = members
            sections[label] = {"shard": labels[label], "file": file,
                               "entries": len(members),
                               "base_seq": watermark,
                               "segment": self._segment_path(label)}
        # Section rewrites go to the owning workers first: each dirty
        # shard serializes its own replica through the DFS gateway,
        # concurrently with its siblings. A worker that declined (no
        # replica yet, missing entry) or crashed leaves its shard out of
        # `done`; the front-end then performs the byte-identical write
        # itself — generation-named files make the retry idempotent.
        done = {}
        pool = self._worker_pool_locked() if rewrites else None
        if pool is not None:
            answered = pool.compact_sections({
                labels[label]: (sections[label]["file"],
                                [(entry.entry_id,
                                  self._keys[entry.entry_id],
                                  rank[entry.entry_id], entry._sequence,
                                  entry.stats.use_count,
                                  entry.stats.last_used_tick)
                                 for entry in members])
                for label, members in rewrites.items()})
            for label in rewrites:
                if answered.get(labels[label]) == len(rewrites[label]):
                    done[label] = True
                    self.worker_sections += 1
        for label in sorted(rewrites):
            if done.get(label):
                continue
            members = rewrites[label]
            file = section_file_path(self.path, label, generation)
            lines = [json.dumps({"position": rank[entry.entry_id],
                                 "key": self._keys[entry.entry_id],
                                 "entry": entry_to_json(entry)},
                                sort_keys=True)
                     for entry in members]
            self.dfs.write_lines(file, lines, overwrite=True)
        order = [[self._keys[entry.entry_id], entry._sequence]
                 for entry in repository.scan()]
        # The scan-order record: a delta against the last durable order
        # when only dirty shards compacted (O(changes) appended to the
        # current order log), a full record in a *fresh* generation-named
        # file otherwise — full compactions, unexpressible deltas
        # (survivors moved), and periodic rebases that bound the replay
        # chain. Appended/written *before* the manifest swap: a crash in
        # between leaves an orphan record (gen above the manifest's
        # order_gen) that the loader skips and the next attach heals.
        delta = None
        if (set(targets) != set(labels)
                and self._order_log is not None
                and self._last_recorded_order is not None
                and self._order_records < ORDER_REBASE_RECORDS):
            delta = encode_order_delta(self._last_recorded_order, order)
        if delta is not None:
            order_log = self._order_log
            self.dfs.append_lines(order_log, [json.dumps(
                {"gen": generation, **delta}, sort_keys=True)])
            order_records = self._order_records + 1
        else:
            order_log = order_log_path(self.path, generation)
            self.dfs.write_lines(order_log, [json.dumps(
                {"gen": generation, "full": order}, sort_keys=True)],
                overwrite=True)
            order_records = 1
        header = {MANIFEST_KEY: DELTA_MANIFEST_VERSION,
                  "num_shards": getattr(repository, "num_shards", 0),
                  "entries": len(repository),
                  "last_seq": watermark,
                  "log": self.log_path,
                  "order_log": order_log,
                  "order_gen": generation,
                  "sections": [sections[label] for label in sorted(sections)]}
        ranker_name = getattr(self.ranker, "name", self.ranker)
        if ranker_name is not None:
            header["ranker"] = ranker_name
        self.dfs.write_lines(self.path, [json.dumps(header, sort_keys=True)],
                             overwrite=True)
        for label in sorted(targets):
            segment = sections[label]["segment"]
            if self.dfs.exists(segment):
                self.dfs.write_lines(segment, [], overwrite=True)
        # Only now are the buffered records subsumed by sections that
        # actually landed — a failed write must leave them pending, or a
        # caller that catches the error and retries would silently lose
        # those mutations.
        for label in targets:
            self._pending.pop(label, None)
            self._segment_records[label] = 0
        self._sections = sections
        self._order_log = order_log
        self._last_recorded_order = order
        self._order_records = order_records
        referenced = {state["file"] for state in sections.values()
                      if state["file"] is not None}
        for old in self.dfs.list_files(prefix=section_file_prefix(self.path)):
            if old not in referenced:
                self.dfs.delete_if_exists(old)
        for old in self.dfs.list_files(prefix=order_log_prefix(self.path)):
            if old != order_log:
                self.dfs.delete_if_exists(old)
        # A legacy single-file v3 log at the base path is fully subsumed
        # by the sections (this is the v3 -> v4 migration tail).
        self.dfs.delete_if_exists(self.log_path)
        return sorted(targets)

    def describe(self):
        with self._mutex:
            state = ("unattached" if self.repository is None
                     else f"seq {self._seq}")
            dirty = ", ".join(self.dirty_shards()) or "none"
            return (
                f"RepositoryLog[{self.path} + {self.log_path}.*]: "
                f"{state}, {self.log_records} logged record(s) across "
                f"{sum(1 for count in self._segment_records.values() if count)} "
                f"segment(s), {self.pending_records} pending, "
                f"ratio {self.log_ratio():.2f}/{self.compact_ratio}, "
                f"dirty: {dirty}"
            )

    def __repr__(self):
        return f"<{self.describe()}>"


def _section_generation(file):
    """The integer generation suffix of a section file name
    (``"....g17"`` → 17); unparseable names count as -1 so the
    allocator simply skips past them."""
    _, _, suffix = file.rpartition(".g")
    if suffix.isdigit():
        return int(suffix)
    return -1


def _key_index(key):
    """The integer suffix of a stable log key (``"k17"`` → 17). Keys this
    class did not mint (e.g. a snapshot written directly through
    ``save_snapshot`` uses ``"s<position>"`` fallbacks) count as -1: they
    live in a different prefix, so the allocator cannot collide with
    them and need not skip past them."""
    if isinstance(key, str) and key[:1] == "k" and key[1:].isdigit():
        return int(key[1:])
    return -1
