"""Incremental repository persistence: the append-only change log.

The paper's repository is long-lived durable state ("Facebook stores the
result of any query ... for seven days"), yet :func:`save_repository`
rewrites the entire file on every checkpoint — O(repository) per save,
which defeats the production-scale goal once the repository holds
thousands of entries. :class:`RepositoryLog` makes the steady-state
checkpoint cost O(delta) instead:

* it subscribes to the repository's **change-event channel**
  (``Repository.add_listener``) and turns every mutation — insert,
  remove, use-stamp — into one JSONL record tagged with a monotonic
  sequence number and the owning shard id;
* :meth:`checkpoint` appends the buffered records to a side log through
  :meth:`~repro.dfs.filesystem.DistributedFileSystem.append_lines`
  (which places blocks only for the new lines), so the per-checkpoint
  write is proportional to what changed since the last one;
* when the log outgrows the snapshot (``log records / repository
  entries > compact_ratio``), :meth:`compact` amortizes it away: one
  full v3 snapshot rewrite (:func:`~repro.restore.persistence.save_snapshot`)
  followed by a log truncation.

Crash safety is positional, not transactional: the snapshot is written
*before* the log is truncated, so a crash between the two leaves old
records whose sequence numbers are at or below the new snapshot's
``base_seq`` — replay skips them as stale. A crash mid-append leaves a
partial final line — replay drops the torn tail. Either way
``load_repository`` rebuilds exactly the state of the last completed
append, and a re-attached ``RepositoryLog`` resumes from the loader's
replay state (healing the log with a fresh compaction when the tail was
torn). Use-stamps are logged as absolute counter values, so replaying
one twice converges instead of double-counting.

Entries are identified across restarts by **stable log keys** (the
``key`` field in snapshot and log records), assigned by this class on
insert — entry ids are process-local and re-minted on every load, so
remove/use records cannot reference them.
"""

import json

from repro.common.errors import RepositoryError
from repro.restore.persistence import (
    DEFAULT_REPOSITORY_PATH,
    entry_to_json,
    LOG_MANIFEST_VERSION,
    read_manifest_line,
    save_snapshot,
)


class RepositoryLog:
    """Append-only change log + periodic compaction for one repository.

    Parameters:

    * ``dfs`` — the file system holding snapshot and log;
    * ``path`` — the snapshot path (shared with ``load_repository``);
    * ``log_path`` — the change-log path (default ``<path>.log``);
    * ``compact_ratio`` — compaction threshold: compact when log records
      per repository entry exceed this (≤ 0 is rejected; large values
      effectively disable compaction, which the ablation benchmark uses
      to isolate the append cost);
    * ``ranker`` — deployment metadata recorded in the snapshot manifest,
      exactly as ``save_repository(..., ranker=...)`` records it.

    Call :meth:`attach` to bind a repository (the indexed
    :class:`~repro.restore.repository.Repository` or the sharded
    subclass — the frozen seed baseline has no change-event channel),
    then :meth:`checkpoint` whenever the on-DFS state should catch up
    with the live one; :class:`~repro.restore.manager.ReStore` does this
    every ``checkpoint_every`` submits.
    """

    def __init__(self, dfs, path=DEFAULT_REPOSITORY_PATH, log_path=None,
                 compact_ratio=1.0, ranker=None):
        if compact_ratio <= 0:
            raise ValueError(
                f"compact_ratio must be positive, got {compact_ratio}")
        self.dfs = dfs
        self.path = path
        self.log_path = log_path if log_path is not None else f"{path}.log"
        self.compact_ratio = compact_ratio
        self.ranker = ranker
        self.repository = None
        self._seq = 0                # last sequence number assigned
        self._next_key = 0           # stable-key allocator
        self._keys = {}              # entry_id -> stable log key
        self._pending = []           # serialized records not yet on DFS
        self._log_records = 0        # complete records in the DFS log

    # Lifecycle --------------------------------------------------------------

    def attach(self, repository):
        """Bind ``repository`` and subscribe to its change events.

        A repository freshly rebuilt by ``load_repository`` from this
        snapshot/log pair resumes seamlessly: sequence numbers and
        stable keys continue from the loader's replay state. Anything
        else — a live repository, one loaded from a v1/v2 file, or a
        reload whose log had crash damage (torn tail, stale records) —
        is checkpointed immediately: attach writes a fresh v3 snapshot
        and truncates the log. That initial compaction is also the
        v1→v3 / v2→v3 migration path.
        """
        if self.repository is not None:
            if self.repository is repository:
                return self
            raise RepositoryError(
                "this RepositoryLog is already attached to a different "
                "repository; detach() it first")
        if not hasattr(repository, "add_listener"):
            # Checked before any state mutates, so a failed attach
            # leaves the log reusable.
            raise RepositoryError(
                f"{type(repository).__name__} has no change-event "
                f"channel (add_listener); the frozen seed baseline "
                f"cannot drive a RepositoryLog")
        if getattr(repository, "persistence_log", None) is not None:
            # Two logs on one repository would buffer every mutation
            # twice (one of them usually forever) and, at shared paths,
            # interleave records with independent sequence counters.
            raise RepositoryError(
                "repository already has an attached RepositoryLog; "
                "detach()/close() it first")
        loaded_from_here = (
            getattr(repository, "loader_report", None) is not None
            and repository.loader_report.snapshot_path == self.path
            # Identity, not just a matching path string: a load from a
            # *different* DFS must not vouch for this one (an empty
            # repository loaded from fresh dfs_A would otherwise bypass
            # the wipe guard and compact over dfs_B's durable state).
            and getattr(repository.loader_report, "dfs", None) is self.dfs
            # And a file must actually have been read: a load that found
            # nothing (e.g. the snapshot was deleted while the change
            # log still holds records) vouches for nothing — the wipe
            # guard must still protect the log.
            and repository.loader_report.format_version is not None)
        probe = None  # lazy: the clean-resume path never needs it
        if len(repository) == 0 and not loaded_from_here:
            probe = self._probe_durable_state()
            if probe[0]:
                # Almost certainly a restart that forgot
                # load_repository(): attaching would compact the empty
                # live state over the snapshot and silently wipe it. (A
                # repository genuinely emptied after loading from this
                # path is exempt — its loader report vouches for it.)
                raise RepositoryError(
                    f"refusing to attach an empty repository over the "
                    f"snapshot at {self.path!r}, which holds {probe[0]} "
                    f"record(s): the initial compaction would wipe it. "
                    f"Load it first (load_repository) or delete the "
                    f"stale snapshot to really start fresh")
        self.repository = repository
        # A fresh binding: records buffered (and keys assigned) for a
        # previously attached repository describe state this one does
        # not share — flushing them into the new log would inject ghost
        # mutations and reused sequence numbers (detach() warns to
        # flush/close first if they were wanted).
        self._pending = []
        self._keys = {}
        self._log_records = 0
        report = getattr(repository, "loader_report", None)
        resumable = (
            report is not None
            and report.format_version == LOG_MANIFEST_VERSION
            and report.snapshot_path == self.path
            and report.log_path == self.log_path
            and getattr(report, "dfs", None) is self.dfs
            # The replay state is single-use: it describes the repository
            # as loaded. A later attach (after mutations possibly logged
            # and compacted by another RepositoryLog) must not rewind the
            # sequence counter to load time — records appended after a
            # rewind would sit at or below the on-DFS base_seq and be
            # silently skipped as stale on the next reload.
            and not report.replay_state_consumed
            and self.dfs.exists(self.path)
        )
        if report is not None:
            report.replay_state_consumed = True
        untracked_mutations = False
        if resumable:
            self._seq = report.last_seq
            live_ids = {entry.entry_id for entry in repository}
            self._keys = {entry_id: key
                          for entry_id, key in report.keys.items()
                          if entry_id in live_ids}
            # Mutations applied between load and attach happened before
            # the listener subscribed, so the log never saw them: a
            # removal leaves a loader key with no live entry, a
            # use-stamp leaves live stats differing from their values at
            # load time. Either forces the healing compaction below
            # (inserts are caught by the unkeyed check).
            untracked_mutations = (
                len(self._keys) != len(report.keys)
                or any((entry.stats.use_count, entry.stats.last_used_tick)
                       != report.use_stats.get(entry.entry_id)
                       for entry in repository))
        self._next_key = 1 + max(
            (_key_index(key) for key in self._keys.values()), default=-1)
        unkeyed = [entry for entry in repository
                   if entry.entry_id not in self._keys]
        for entry in unkeyed:
            self._assign_key(entry)
        repository.add_listener(self._on_event)
        repository.persistence_log = self
        clean = (resumable
                 and not unkeyed
                 and not untracked_mutations
                 and report.torn_tail_dropped == 0
                 and report.stale_records == 0)
        if clean:
            self._log_records = report.log_records
        else:
            # The healing compaction must not hand out a base_seq below
            # sequence numbers already durable at this path: if the
            # compaction crashes between the snapshot write and the log
            # truncation, leftover records above base_seq would replay
            # as fresh mutations on top of a snapshot that never saw
            # them.
            if probe is None:
                probe = self._probe_durable_state()
            self._seq = max(self._seq, probe[1])
            self.compact()
        return self

    def _probe_durable_state(self):
        """One pass over the durable files at this path, returning
        ``(records, max_seq)``: how many records they hold (snapshot
        entries plus outstanding change-log lines — state can live
        entirely in the log before the first compaction; conservative,
        possibly-stale lines included) and the highest sequence number
        among the snapshot's ``base_seq`` and the log's records
        (unparseable lines, e.g. a torn tail, are skipped). Runs once
        per :meth:`attach` — the wipe guard needs the count, the
        non-resumable compaction needs the sequence floor."""
        records = 0
        top = 0
        if self.dfs.exists(self.path):
            manifest = read_manifest_line(self.dfs, self.path)
            if manifest is not None:
                num_lines = self.dfs.status(self.path).num_lines
                records += manifest.get("entries", max(0, num_lines - 1))
                base_seq = manifest.get("base_seq", 0)
                if isinstance(base_seq, int):
                    top = max(top, base_seq)
            else:
                # v1 (or unreadable first line): one entry per line.
                records += self.dfs.status(self.path).num_lines
        if self.dfs.exists(self.log_path):
            log_lines = self.dfs.read_lines(self.log_path)
            records += len(log_lines)
            for line in log_lines:
                try:
                    record = json.loads(line)
                except ValueError:
                    continue
                if isinstance(record, dict) and isinstance(record.get("seq"),
                                                           int):
                    top = max(top, record["seq"])
        return records, top

    def detach(self):
        """Unsubscribe from the repository (pending records are kept;
        flush or compact first if they must reach the DFS)."""
        if self.repository is not None:
            self.repository.remove_listener(self._on_event)
            if getattr(self.repository, "persistence_log", None) is self:
                self.repository.persistence_log = None
            self.repository = None

    def close(self):
        """Flush pending deltas, then detach."""
        if self.repository is not None:
            self.flush()
            self.detach()

    # Change events ----------------------------------------------------------

    def _assign_key(self, entry):
        key = f"k{self._next_key}"
        self._next_key += 1
        self._keys[entry.entry_id] = key
        return key

    def _on_event(self, op, entry):
        self._seq += 1
        record = {"seq": self._seq, "op": op,
                  "shard": self.repository.shard_id_of(entry)}
        if op == "insert":
            record["key"] = self._assign_key(entry)
            record["entry"] = entry_to_json(entry)
        elif op == "remove":
            record["key"] = self._keys.pop(entry.entry_id, None)
        elif op == "use":
            record["key"] = self._keys.get(entry.entry_id)
            # Absolute values, not increments: replay is idempotent.
            record["use_count"] = entry.stats.use_count
            record["last_used_tick"] = entry.stats.last_used_tick
        else:
            return  # an event this release does not persist
        self._pending.append(json.dumps(record, sort_keys=True))

    # Checkpointing ----------------------------------------------------------

    @property
    def pending_records(self):
        """Buffered change records not yet appended to the DFS log."""
        return len(self._pending)

    @property
    def log_records(self):
        """Complete change records currently in the DFS log."""
        return self._log_records

    def log_ratio(self):
        """(on-DFS + pending) log records per repository entry — what
        :attr:`compact_ratio` bounds (0 entries count as 1; an
        unattached log reports over the empty repository)."""
        size = len(self.repository) if self.repository is not None else 0
        return (self._log_records + len(self._pending)) / max(1, size)

    def should_compact(self):
        total = self._log_records + len(self._pending)
        return total > 0 and self.log_ratio() > self.compact_ratio

    def flush(self):
        """Append pending change records to the DFS log; O(delta)."""
        if not self._pending:
            return 0
        appended = len(self._pending)
        self.dfs.append_lines(self.log_path, self._pending)
        self._log_records += appended
        self._pending = []
        return appended

    def checkpoint(self):
        """Bring the on-DFS state up to the live repository.

        Appends the pending deltas — unless the log has outgrown the
        ``compact_ratio`` threshold, in which case the whole repository
        is compacted instead (the pending deltas are subsumed by the
        snapshot). Returns ``{"appended": n, "compacted": bool}``.
        """
        if self.should_compact():
            subsumed = len(self._pending)
            self.compact()
            return {"appended": subsumed, "compacted": True}
        return {"appended": self.flush(), "compacted": False}

    def compact(self):
        """Full v3 snapshot rewrite + log truncation.

        The snapshot lands before the log is truncated
        (``save_snapshot`` orders the two writes), so a crash between
        them leaves only records the snapshot's ``base_seq`` already
        covers — replay skips them as stale.
        """
        save_snapshot(self.repository, self.dfs, self.path,
                      log_path=self.log_path, base_seq=self._seq,
                      keys=self._keys, ranker=self.ranker)
        # Only now are the buffered records subsumed by a snapshot that
        # actually landed — a failed write must leave them pending, or a
        # caller that catches the error and retries would silently lose
        # those mutations.
        self._pending = []
        self._log_records = 0

    def describe(self):
        state = "unattached" if self.repository is None else f"seq {self._seq}"
        return (
            f"RepositoryLog[{self.path} + {self.log_path}]: "
            f"{state}, {self._log_records} logged record(s), "
            f"{len(self._pending)} pending, "
            f"ratio {self.log_ratio():.2f}/{self.compact_ratio}"
        )

    def __repr__(self):
        return f"<{self.describe()}>"


def _key_index(key):
    """The integer suffix of a stable log key (``"k17"`` → 17). Keys this
    class did not mint (e.g. a snapshot written directly through
    ``save_snapshot`` uses ``"s<position>"`` fallbacks) count as -1: they
    live in a different prefix, so the allocator cannot collide with
    them and need not skip past them."""
    if isinstance(key, str) and key[:1] == "k" and key[1:].isdigit():
        return int(key[1:])
    return -1
