"""The seed's linear-scan repository, frozen as a reference oracle.

This is a verbatim-behavior copy of the repository the reproduction
shipped with before indexing (PR 1): ``insert`` re-derives the partial
order with Kahn's algorithm over all entry pairs (O(n^2) containment
tests), ``find_equivalent`` walks every entry with a full
mutual-containment check, and ``match_candidates`` is simply the full
scan — the paper's sequential scan, taken literally.

It exists for two reasons:

* the property suite proves that the indexed
  :class:`repro.restore.Repository` produces *bit-identical* scan orders,
  equivalence lookups, and match/rewrite decisions on randomized workflow
  streams (the indexed rewrite is an optimization, not a semantic
  change);
* ``benchmarks/bench_ablation_repository.py`` measures the speedup the
  indexes buy, which is the flip side of the matching overhead the paper
  reports in Figs. 11/14.

Do not "improve" this module: its value is that it stays exactly what the
seed did. It reuses :class:`repro.restore.RepositoryEntry` — entries are
plain records and identical in both implementations.
"""

from repro.common.errors import RepositoryError
from repro.restore.matcher import contains


class LinearScanRepository:
    """The seed's ordered collection of repository entries."""

    def __init__(self):
        self._entries = []
        self._sequence = 0
        self._subsumption_cache = {}

    def __len__(self):
        return len(self._entries)

    def __iter__(self):
        return iter(self._entries)

    def scan(self):
        """Entries in the order the matcher must try them."""
        return list(self._entries)

    def match_candidates(self, plan):
        """The seed had no index: every entry is a candidate."""
        return self.scan()

    def entry(self, entry_id):
        for entry in self._entries:
            if entry.entry_id == entry_id:
                return entry
        raise RepositoryError(f"no entry {entry_id!r}")

    def total_stored_bytes(self):
        return sum(entry.stats.output_bytes for entry in self._entries)

    # Insertion ------------------------------------------------------------

    def insert(self, entry):
        entry._sequence = self._sequence
        self._sequence += 1
        self._entries.append(entry)
        self._reorder()
        return entry

    def _subsumes(self, a, b):
        key = (a.entry_id, b.entry_id)
        cached = self._subsumption_cache.get(key)
        if cached is None:
            cached = contains(b.plan, a.plan) and not contains(a.plan, b.plan)
            self._subsumption_cache[key] = cached
        return cached

    def _reorder(self):
        """Kahn's algorithm over subsumption edges, metric-prioritized."""
        entries = self._entries
        blockers = {entry.entry_id: 0 for entry in entries}
        dependents = {entry.entry_id: [] for entry in entries}
        for a in entries:
            for b in entries:
                if a is not b and self._subsumes(a, b):
                    blockers[b.entry_id] += 1
                    dependents[a.entry_id].append(b)

        def priority(entry):
            return (-entry.stats.reduction_ratio,
                    -entry.stats.producing_job_time,
                    entry._sequence)

        ready = sorted(
            (entry for entry in entries if blockers[entry.entry_id] == 0),
            key=priority,
        )
        ordered = []
        while ready:
            entry = ready.pop(0)
            ordered.append(entry)
            changed = False
            for dependent in dependents[entry.entry_id]:
                blockers[dependent.entry_id] -= 1
                if blockers[dependent.entry_id] == 0:
                    ready.append(dependent)
                    changed = True
            if changed:
                ready.sort(key=priority)
        if len(ordered) != len(entries):
            raise RepositoryError("subsumption relation is cyclic (bug)")
        self._entries = ordered

    def find_equivalent(self, plan):
        """An entry computing exactly ``plan`` (mutual containment), if any."""
        for entry in self._entries:
            if contains(entry.plan, plan) and contains(plan, entry.plan):
                return entry
        return None

    # Removal --------------------------------------------------------------------

    def remove(self, entry, dfs=None):
        """Drop ``entry``; delete its file when ReStore owns it."""
        try:
            self._entries.remove(entry)
        except ValueError as exc:
            raise RepositoryError(f"{entry!r} is not in the repository") from exc
        if dfs is not None and entry.owns_file:
            dfs.delete_if_exists(entry.output_path)

    def describe(self):
        lines = [f"Repository: {len(self._entries)} entr(ies)"]
        lines.extend(f"- {entry.describe()}" for entry in self._entries)
        return "\n".join(lines)
