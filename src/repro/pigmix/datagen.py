"""PigMix-style data generation.

Tables (flattened relative to PigMix's nested bags/maps — page_info and
page_links become opaque strings, which preserves the byte-volume role they
play in the paper's I/O-bound experiments):

* ``page_views(user, action, timespent, query_term, ip_addr, timestamp,
  estimated_revenue, page_info, page_links)`` — the large fact table;
* ``users(name, phone, address, city, state, zip)`` — covers almost every
  page_views user (L5's anti-join output is tiny, as in Table 1);
* ``power_users`` — a small subset of users (selective joins).

The user popularity distribution is Zipf-like, as in PigMix's generator.
"""

from repro.common import DeterministicRng
from repro.data import DataType, encode_row, Field, Schema

PAGE_VIEWS_SCHEMA = Schema(
    [
        Field("user", DataType.CHARARRAY),
        Field("action", DataType.INT),
        Field("timespent", DataType.INT),
        Field("query_term", DataType.CHARARRAY),
        Field("ip_addr", DataType.CHARARRAY),
        Field("timestamp", DataType.INT),
        Field("estimated_revenue", DataType.DOUBLE),
        Field("page_info", DataType.CHARARRAY),
        Field("page_links", DataType.CHARARRAY),
    ]
)

USERS_SCHEMA = Schema(
    [
        Field("name", DataType.CHARARRAY),
        Field("phone", DataType.CHARARRAY),
        Field("address", DataType.CHARARRAY),
        Field("city", DataType.CHARARRAY),
        Field("state", DataType.CHARARRAY),
        Field("zip", DataType.CHARARRAY),
    ]
)

POWER_USERS_SCHEMA = USERS_SCHEMA


class PigMixConfig:
    """Sizing knobs for one benchmark instance.

    The paper's instances differ 10x in page_views volume (15 GB vs
    150 GB); mirror that with ``num_page_views`` ratios. ``missing_users``
    users appearing in page_views have no users row (L5's anti-join
    output).
    """

    def __init__(self, num_page_views=12_000, num_users=600, num_power_users=60,
                 missing_users=2, num_query_terms=None, seed=42):
        self.num_page_views = num_page_views
        self.num_users = num_users
        self.num_power_users = min(num_power_users, num_users)
        self.missing_users = missing_users
        # Enough distinct query terms that (user, query_term) groups are
        # nearly unique -> L6's Group output is large, as the paper notes.
        self.num_query_terms = num_query_terms or max(10, num_page_views // 2)
        self.seed = seed

    def scaled(self, factor):
        """A config ``factor``x larger (the 150 GB instance is 10x 15 GB)."""
        return PigMixConfig(
            num_page_views=self.num_page_views * factor,
            num_users=self.num_users * factor,
            num_power_users=self.num_power_users * factor,
            missing_users=self.missing_users,
            seed=self.seed,
        )


class PigMixData:
    """Generates and installs one PigMix instance into a DFS."""

    def __init__(self, config=None):
        self.config = config or PigMixConfig()

    def user_pool(self):
        """All user names appearing in page_views (Zipf-weighted draws)."""
        return [f"user{i:06d}" for i in range(self.config.num_users)]

    def _zipf_weights(self, count):
        return [1.0 / (rank + 1) for rank in range(count)]

    def page_views_rows(self):
        cfg = self.config
        rng = DeterministicRng(cfg.seed).substream("page_views")
        pool = self.user_pool()
        weights = self._zipf_weights(len(pool))
        users = rng.choices(pool, weights=weights, k=cfg.num_page_views)
        rows = []
        for index, user in enumerate(users):
            action = rng.randint(1, 2)
            timespent = rng.randint(1, 600)
            query_term = f"q{rng.randint(0, cfg.num_query_terms - 1):06d}"
            ip_addr = (
                f"{rng.randint(1, 255)}.{rng.randint(0, 255)}."
                f"{rng.randint(0, 255)}.{rng.randint(0, 255)}"
            )
            timestamp = rng.randint(0, 86_399)
            revenue = round(rng.uniform(0.01, 99.99), 2)
            # page_info/page_links stand in for PigMix's nested map/bag
            # fields; their bulk (most of the ~700B row) is what makes
            # projections shed ~97% of the bytes, as in the paper.
            page_info = "i" + rng.rand_string(179)
            page_links = "l" + rng.rand_string(419)
            rows.append(
                (user, action, timespent, query_term, ip_addr, timestamp,
                 revenue, page_info, page_links)
            )
        return rows

    def users_rows(self):
        """One row per pool user except the ``missing_users`` heaviest-
        numbered ones (so L5 finds a few unmatched page_views users)."""
        cfg = self.config
        rng = DeterministicRng(cfg.seed).substream("users")
        rows = []
        for index, name in enumerate(self.user_pool()):
            if index >= cfg.num_users - cfg.missing_users:
                continue
            rows.append(
                (
                    name,
                    f"555-{rng.randint(0, 9999):04d}",
                    f"{rng.randint(1, 999)} {rng.rand_string(8)} St",
                    rng.rand_string(10),
                    rng.rand_string(2).upper(),
                    f"{rng.randint(10000, 99999)}",
                )
            )
        return rows

    def power_users_rows(self):
        """A small, deterministic subset of users (every k-th user)."""
        cfg = self.config
        users = self.users_rows()
        step = max(1, len(users) // max(1, cfg.num_power_users))
        return users[::step][: cfg.num_power_users]

    def install(self, dfs, prefix="/data"):
        """Write all three tables; returns a dict of path -> FileStatus."""
        tables = {
            f"{prefix}/page_views": (self.page_views_rows(), PAGE_VIEWS_SCHEMA),
            f"{prefix}/users": (self.users_rows(), USERS_SCHEMA),
            f"{prefix}/power_users": (self.power_users_rows(), POWER_USERS_SCHEMA),
        }
        statuses = {}
        for path, (rows, schema) in tables.items():
            lines = [encode_row(row, schema) for row in rows]
            statuses[path] = dfs.write_lines(path, lines, overwrite=True)
        return statuses
