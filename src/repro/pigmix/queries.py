"""PigMix queries L2-L8, L11 and the paper's variants.

Written against the flattened table schemas of
:mod:`repro.pigmix.datagen`, in the shapes the paper evaluates:

* L2 — selective join with power_users (one MR job, Figure 2's shape);
* L3 — big join + group/SUM (two MR jobs, Figure 3; the paper's Q2);
* L4 — per-user distinct-action counts (authentic nested-FOREACH form:
  ``distinct`` inside the FOREACH block);
* L5 — anti-join via COGROUP + COUNT == 0 (tiny output, Table 1);
* L6 — wide group by (user, query_term) + SUM (the expensive Group whose
  materialized output is large under the Aggressive heuristic);
* L7 — nested morning/afternoon split: two inner FILTERs over the grouped
  bag, counted per user (authentic PigMix form);
* L8 — GROUP ALL with COUNT/SUM/AVG (single-row output);
* L11 — DISTINCT users from two tables, UNION, outer DISTINCT (three MR
  jobs, one depending on the other two — Section 7.1).

Variants: L3a-c change the aggregate (the join job is shared); L11a-d
change which datasets are combined (subsets of the DISTINCT jobs are
shared).
"""


class PigMixPaths:
    """Dataset and output locations for one benchmark run."""

    def __init__(self, prefix="/data", out_prefix="/out"):
        self.page_views = f"{prefix}/page_views"
        self.users = f"{prefix}/users"
        self.power_users = f"{prefix}/power_users"
        self.out_prefix = out_prefix

    def out(self, name):
        return f"{self.out_prefix}/{name}"


_PAGE_VIEWS_AS = (
    "(user:chararray, action:int, timespent:int, query_term:chararray, "
    "ip_addr:chararray, timestamp:int, estimated_revenue:double, "
    "page_info:chararray, page_links:chararray)"
)
_USERS_AS = (
    "(name:chararray, phone:chararray, address:chararray, city:chararray, "
    "state:chararray, zip:chararray)"
)


def _load_page_views(paths):
    return f"A = load '{paths.page_views}' as {_PAGE_VIEWS_AS};\n"


def l2(paths):
    return (
        _load_page_views(paths)
        + f"""B = foreach A generate user, estimated_revenue;
alpha = load '{paths.power_users}' as {_USERS_AS};
beta = foreach alpha generate name;
C = join beta by name, B by user parallel 40;
store C into '{paths.out("L2_out")}';
"""
    )


def _l3_with_aggregate(paths, aggregate, out_name):
    return (
        _load_page_views(paths)
        + f"""B = foreach A generate user, estimated_revenue;
alpha = load '{paths.users}' as {_USERS_AS};
beta = foreach alpha generate name;
C = join beta by name, B by user parallel 40;
D = group C by $0 parallel 40;
E = foreach D generate group, {aggregate}(C.estimated_revenue);
store E into '{paths.out(out_name)}';
"""
    )


def l3(paths):
    return _l3_with_aggregate(paths, "SUM", "L3_out")


def l3a(paths):
    return _l3_with_aggregate(paths, "AVG", "L3a_out")


def l3b(paths):
    return _l3_with_aggregate(paths, "COUNT", "L3b_out")


def l3c(paths):
    return _l3_with_aggregate(paths, "MIN", "L3c_out")


def l4(paths):
    return (
        _load_page_views(paths)
        + f"""B = foreach A generate user, action;
C = group B by user parallel 40;
D = foreach C {{
    aleph = B.action;
    gen = distinct aleph;
    generate group, COUNT(gen);
}};
store D into '{paths.out("L4_out")}';
"""
    )


def l5(paths):
    return (
        _load_page_views(paths)
        + f"""B = foreach A generate user;
alpha = load '{paths.users}' as {_USERS_AS};
beta = foreach alpha generate name;
C = cogroup B by user, beta by name parallel 40;
D = filter C by COUNT(beta) == 0 and COUNT(B) > 0;
E = foreach D generate group;
store E into '{paths.out("L5_out")}';
"""
    )


def l6(paths):
    return (
        _load_page_views(paths)
        + f"""B = foreach A generate user, action, timespent, query_term;
C = group B by (user, query_term) parallel 40;
D = foreach C generate flatten(group), SUM(B.timespent);
store D into '{paths.out("L6_out")}';
"""
    )


def l7(paths):
    return (
        _load_page_views(paths)
        + f"""B = foreach A generate user, timestamp;
C = group B by user parallel 40;
D = foreach C {{
    morning = filter B by timestamp < 43200;
    afternoon = filter B by timestamp >= 43200;
    generate group, COUNT(morning), COUNT(afternoon);
}};
store D into '{paths.out("L7_out")}';
"""
    )


def l8(paths):
    return (
        _load_page_views(paths)
        + f"""B = foreach A generate user, timespent, estimated_revenue;
C = group B all;
D = foreach C generate COUNT(B), SUM(B.timespent), AVG(B.estimated_revenue);
store D into '{paths.out("L8_out")}';
"""
    )


def _l11_union(paths, first, second, out_name):
    sources = {
        "page_views": (
            _load_page_views(paths) + "B = foreach A generate user;\n",
            "B",
        ),
        "users": (
            f"alpha = load '{paths.users}' as {_USERS_AS};\n"
            "beta = foreach alpha generate name;\n",
            "beta",
        ),
        "power_users": (
            f"rho = load '{paths.power_users}' as {_USERS_AS};\n"
            "sigma = foreach rho generate name;\n",
            "sigma",
        ),
    }
    text = ""
    distinct_aliases = []
    for index, source in enumerate((first, second)):
        load_text, alias = sources[source]
        text += load_text
        distinct_alias = f"d{index}"
        text += f"{distinct_alias} = distinct {alias} parallel 40;\n"
        distinct_aliases.append(distinct_alias)
    text += f"U = union {', '.join(distinct_aliases)};\n"
    text += "E = distinct U parallel 40;\n"
    text += f"store E into '{paths.out(out_name)}';\n"
    return text


def l11(paths):
    return _l11_union(paths, "page_views", "users", "L11_out")


def l11a(paths):
    return _l11_union(paths, "page_views", "power_users", "L11a_out")


def l11b(paths):
    return _l11_union(paths, "users", "power_users", "L11b_out")


def l11c(paths):
    return _l11_union(paths, "power_users", "page_views", "L11c_out")


def l11d(paths):
    return _l11_union(paths, "power_users", "users", "L11d_out")


#: The Section 7.2/7.3 query set (Figures 10-14, Table 1).
ALL_QUERIES = {
    "L2": l2,
    "L3": l3,
    "L4": l4,
    "L5": l5,
    "L6": l6,
    "L7": l7,
    "L8": l8,
    "L11": l11,
}

#: The Section 7.1/7.4 variant families (Figures 9 and 15): base query
#: first; variants share whole jobs with the base.
VARIANT_FAMILIES = {
    "L3": {"L3": l3, "L3a": l3a, "L3b": l3b, "L3c": l3c},
    "L11": {"L11": l11, "L11a": l11a, "L11b": l11b, "L11c": l11c, "L11d": l11d},
}


def query_text(name, paths=None):
    """Query text by name ("L2".."L11d")."""
    paths = paths or PigMixPaths()
    for table in (ALL_QUERIES, VARIANT_FAMILIES["L3"], VARIANT_FAMILIES["L11"]):
        if name in table:
            return table[name](paths)
    raise KeyError(f"unknown PigMix query {name!r}")
