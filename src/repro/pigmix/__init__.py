"""The PigMix benchmark workload (paper Section 7).

A deterministic data generator for the page_views / users / power_users
tables and the query subset the paper evaluates: L2-L8 and L11, plus the
L3a-c / L11a-d variants of Section 7.1. The paper's 15 GB and 150 GB
instances are realized as scaled-down datasets whose byte counts the
harness maps back to paper scale through the cost model's ``scale`` knob.
"""

from repro.pigmix.datagen import (
    PAGE_VIEWS_SCHEMA,
    PigMixConfig,
    PigMixData,
    POWER_USERS_SCHEMA,
    USERS_SCHEMA,
)
from repro.pigmix.queries import (
    ALL_QUERIES,
    PigMixPaths,
    query_text,
    VARIANT_FAMILIES,
)

__all__ = [
    "ALL_QUERIES",
    "PAGE_VIEWS_SCHEMA",
    "PigMixConfig",
    "PigMixData",
    "PigMixPaths",
    "POWER_USERS_SCHEMA",
    "query_text",
    "USERS_SCHEMA",
    "VARIANT_FAMILIES",
]
